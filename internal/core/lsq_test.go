package core

import (
	"testing"
	"testing/quick"

	"hetwire/internal/config"
	"hetwire/internal/xrand"
)

func newTestLSQ() *lsqState {
	cfg := config.Default()
	cfg.Tech.LSBits = 8
	return newLSQ(cfg)
}

// TestFullDisambiguationNoStores: with an empty LSQ a load starts as soon
// as its address arrives.
func TestFullDisambiguationNoStores(t *testing.T) {
	l := newTestLSQ()
	tm := l.disambiguateFull(0x1000, 50)
	if tm.start != 50 || tm.forwarded || tm.falseDep {
		t.Fatalf("unexpected timing: %+v", tm)
	}
}

// TestFullDisambiguationWaitsForPriorStoreAddress: a load must wait for the
// full address of an earlier in-flight store.
func TestFullDisambiguationWaitsForPriorStoreAddress(t *testing.T) {
	l := newTestLSQ()
	l.addStore(lsqStore{addr: 0x2000, partialAt: 60, fullAt: 80, dataAt: 90, commitAt: 200})
	tm := l.disambiguateFull(0x3000, 50)
	if tm.start != 80 {
		t.Errorf("load start = %d, want 80 (prior store address)", tm.start)
	}
	if tm.forwarded {
		t.Error("different word must not forward")
	}
}

// TestFullDisambiguationForwarding: a matching earlier store forwards its
// data (one extra cycle for the bypass mux).
func TestFullDisambiguationForwarding(t *testing.T) {
	l := newTestLSQ()
	l.addStore(lsqStore{addr: 0x2000, partialAt: 60, fullAt: 60, dataAt: 95, commitAt: 200})
	tm := l.disambiguateFull(0x2004, 50) // same 8-byte word as 0x2000? no: 0x2000>>3=0x400, 0x2004>>3=0x400 yes
	if !tm.forwarded {
		t.Fatal("same-word store did not forward")
	}
	if tm.dataAt != 96 {
		t.Errorf("forwarded data at %d, want 96 (dataAt 95 + mux)", tm.dataAt)
	}
}

// TestRetiredStoresIgnored: stores that left the LSQ before the load's
// address arrived impose no constraint.
func TestRetiredStoresIgnored(t *testing.T) {
	l := newTestLSQ()
	l.addStore(lsqStore{addr: 0x2000, partialAt: 10, fullAt: 20, dataAt: 20, commitAt: 30})
	tm := l.disambiguateFull(0x2000, 50) // store committed at 30 < 50
	if tm.start != 50 || tm.forwarded {
		t.Errorf("retired store affected the load: %+v", tm)
	}
}

// TestPartialNoMatchStartsEarly: when the LS bits match no prior store, RAM
// indexing begins at the partial arrival and only the load's own MS bits
// gate the final compare.
func TestPartialNoMatchStartsEarly(t *testing.T) {
	l := newTestLSQ()
	l.addStore(lsqStore{addr: 0x2000, partialAt: 55, fullAt: 300, dataAt: 300, commitAt: 400})
	// 0x3008 differs from 0x2000 in LS word bits: (0x3008>>3)&0xff = 0x01 vs 0x00.
	tm := l.disambiguatePartial(0x3008, 52, 54)
	if !tm.partialChecked {
		t.Fatal("partial path not taken")
	}
	if tm.indexReady != 55 {
		t.Errorf("indexReady = %d, want 55 (all prior partials in)", tm.indexReady)
	}
	if tm.start != 54 {
		t.Errorf("start = %d, want 54 (own MS bits), not the store's late full address", tm.start)
	}
	if tm.falseDep || tm.forwarded {
		t.Errorf("unexpected flags: %+v", tm)
	}
}

// TestPartialFalseDependence: LS bits collide but the full addresses
// differ — the load must wait for the store's full address and the event is
// counted as a false dependence.
func TestPartialFalseDependence(t *testing.T) {
	l := newTestLSQ()
	// Same LS word bits: word 0x400 (addr 0x2000) vs word 0x500 (addr
	// 0x2800): 0x400&0xff = 0, 0x500&0xff = 0. Collision.
	l.addStore(lsqStore{addr: 0x2000, partialAt: 55, fullAt: 120, dataAt: 130, commitAt: 400})
	tm := l.disambiguatePartial(0x2800, 52, 60)
	if !tm.falseDep {
		t.Fatal("LS-bit collision not flagged as false dependence")
	}
	if tm.start != 120 {
		t.Errorf("start = %d, want 120 (matching store's full address)", tm.start)
	}
	if tm.forwarded {
		t.Error("false dependence must not forward")
	}
}

// TestPartialTrueForwarding: a genuine same-word match forwards after the
// full addresses resolve.
func TestPartialTrueForwarding(t *testing.T) {
	l := newTestLSQ()
	l.addStore(lsqStore{addr: 0x2000, partialAt: 55, fullAt: 70, dataAt: 100, commitAt: 400})
	tm := l.disambiguatePartial(0x2000, 52, 60)
	if !tm.forwarded || tm.falseDep {
		t.Fatalf("expected clean forward: %+v", tm)
	}
	if tm.dataAt != 101 {
		t.Errorf("forward data at %d, want 101", tm.dataAt)
	}
}

// TestPruneDropsOldStores: pruning removes stores that committed long ago
// and keeps recent ones.
func TestPruneDropsOldStores(t *testing.T) {
	l := newTestLSQ()
	for i := uint64(1); i <= 100; i++ {
		l.addStore(lsqStore{addr: i * 8, partialAt: i, fullAt: i, dataAt: i, commitAt: i + 10})
	}
	l.prune(100_000)
	if l.depth() != 0 {
		t.Errorf("%d stale stores survived pruning", l.depth())
	}
}

// TestPartialNeverFasterThanOwnBits is a property: the partial path's start
// time never precedes the load's own MS-bit arrival, and indexReady never
// precedes the LS-bit arrival.
func TestPartialNeverFasterThanOwnBits(t *testing.T) {
	src := xrand.New(9)
	l := newTestLSQ()
	f := func(addrRaw uint16, lsOff, msOff uint8) bool {
		seq := l.nextSeq()
		if src.Bool(0.3) {
			l.addStore(lsqStore{
				addr:      uint64(addrRaw) * 8,
				partialAt: 1000 + uint64(lsOff), fullAt: 1010 + uint64(msOff),
				dataAt: 1020, commitAt: 2000 + uint64(seq),
			})
			return true
		}
		ls := 1000 + uint64(lsOff)
		ms := ls + 2 + uint64(msOff)
		tm := l.disambiguatePartial(uint64(addrRaw)*8, ls, ms)
		return tm.start >= ms && tm.indexReady >= ls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
