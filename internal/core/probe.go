package core

import (
	"hetwire/internal/wires"
)

// ProbeInterval is the committed-instruction cadence at which an attached
// Probe receives samples. It deliberately equals CtxCheckInterval: the probe
// rides the context-poll branch that already exists in RunContext, so an
// attached probe adds no new branch to the per-instruction hot loop and a nil
// probe costs exactly one pointer comparison per interval.
const ProbeInterval = CtxCheckInterval

// ProbeSample is one read-only interval snapshot of the running machine.
// Every field is copied out of the simulator; a probe holds no references
// into live state and cannot perturb the simulation. Completed runs are
// bit-identical with and without a probe attached — the golden corpus pins
// this contract.
type ProbeSample struct {
	// Committed is the number of instructions retired at the sample point.
	Committed uint64
	// Cycle is the commit-frontier cycle relative to the stats baseline
	// (i.e. excluding warmup).
	Cycle uint64
	// Final marks the end-of-run sample emitted after the last instruction
	// (also emitted on cancellation or watchdog abort, with partial counts).
	Final bool
	// Stats is the cumulative statistics readout at the sample point, with
	// the per-class network counters (Net), cycle count, and link inventory
	// filled in — the same shape finalize produces at end of run.
	Stats Stats
	// LSQDepth is the number of in-flight stores resident in the centralized
	// load/store queue.
	LSQDepth int
	// IQOccupancy is the total resident issue-queue entries summed over all
	// clusters (int + fp). Lazy expiry makes this an upper bound on true
	// occupancy; reading it touches no scheduler state.
	IQOccupancy int
	// RenameOccupancy is the total resident rename-register-pool entries
	// summed over all clusters, with the same lazy-expiry caveat.
	RenameOccupancy int
}

// Probe receives periodic interval samples from a running simulation: every
// ProbeInterval committed instructions plus one final sample. The sample
// pointer is only valid for the duration of the call; implementations that
// retain it must copy. Implementations must not call back into the
// Processor.
type Probe interface {
	ProbeSample(s *ProbeSample)
}

// SetProbe attaches a telemetry probe (nil detaches). The probe is strictly
// an observer: attaching one changes no simulated behaviour, and a nil probe
// adds no work to the run beyond one pointer comparison per ProbeInterval.
func (p *Processor) SetProbe(pr Probe) { p.probe = pr }

// emitProbe builds one interval snapshot and hands it to the attached probe.
// Only called when p.probe != nil, from the interval branch of RunContext and
// from the end-of-run path — never from the per-instruction hot loop.
func (p *Processor) emitProbe(final bool) {
	s := ProbeSample{
		Committed: p.s.Instructions,
		Cycle:     p.lastCommit - p.statsBase,
		Final:     final,
		Stats:     p.s,
		LSQDepth:  p.lsq.depth(),
	}
	s.Stats.Cycles = s.Cycle
	for i, c := range []wires.Class{wires.B, wires.PW, wires.L} {
		s.Stats.Net[i] = p.net.StatsFor(c)
	}
	s.Stats.WaitCycles = p.net.TotalWaitCycles()
	s.Stats.LinkInventory = p.net.LinkInventory()
	for i := range p.clusters {
		cl := &p.clusters[i]
		s.IQOccupancy += cl.intIQ.Occupied() + cl.fpIQ.Occupied()
		s.RenameOccupancy += cl.intRegs.Occupied() + cl.fpRegs.Occupied()
	}
	p.probe.ProbeSample(&s)
}
