package core

import (
	"context"
	"fmt"

	"hetwire/internal/cache"
	"hetwire/internal/config"
	"hetwire/internal/noc"
	"hetwire/internal/trace"
)

// SharedFabric is the part of the machine that multiprogrammed threads
// share: the inter-cluster network (links, buffers, imbalance detector) and
// the centralized memory hierarchy. The paper motivates 16-cluster machines
// partly through thread-level parallelism; this realises the natural
// partitioned-TLP organisation — each thread owns a disjoint set of
// clusters but contends for wires and cache.
type SharedFabric struct {
	net *noc.Network
	mem *cache.Hierarchy
}

// NewSharedFabric builds the shared interconnect and memory for a
// configuration.
func NewSharedFabric(cfg config.Config) *SharedFabric {
	p := New(cfg) // reuse the construction logic, keep only the shared parts
	return &SharedFabric{net: p.net, mem: p.mem}
}

// NewOnFabric builds a processor context (front end, clusters, LSQ
// sequencing) that executes on a shared fabric, restricted to the given
// clusters. The cluster list must be non-empty and within the topology.
func NewOnFabric(cfg config.Config, fab *SharedFabric, clusters []int) *Processor {
	if len(clusters) == 0 {
		panic("core: thread needs at least one cluster")
	}
	for _, c := range clusters {
		if c < 0 || c >= cfg.Topology.Clusters() {
			panic(fmt.Sprintf("core: cluster %d outside topology", c))
		}
	}
	p := New(cfg)
	p.net = fab.net
	p.mem = fab.mem
	p.allowed = append([]int(nil), clusters...)
	for r := range p.regCluster {
		p.regCluster[r] = uint8(clusters[r%len(clusters)])
	}
	return p
}

// candidateClusters returns the clusters this processor may steer to.
func (p *Processor) candidateClusters() []int {
	if p.allowed != nil {
		return p.allowed
	}
	if p.all == nil {
		p.all = make([]int, p.nClusters)
		for i := range p.all {
			p.all[i] = i
		}
	}
	return p.all
}

// ThreadResult pairs a thread's statistics with its cluster allocation.
type ThreadResult struct {
	Stats    Stats
	Clusters []int
}

// RunMultiprogram executes one instruction stream per thread on a machine
// with a shared interconnect and cache, partitioning the clusters evenly.
// Threads are interleaved by their commit frontier so the shared calendars
// see time-aligned contention. Per-thread Stats carry private pipeline
// statistics; the network counters in each Stats describe the whole shared
// fabric and are therefore identical across threads.
// It is RunMultiprogramContext with a background context (see Run).
func RunMultiprogram(cfg config.Config, streams []trace.Stream, n uint64) []ThreadResult {
	out, _ := RunMultiprogramContext(context.Background(), cfg, streams, n)
	return out
}
