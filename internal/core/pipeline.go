package core

import (
	"hetwire/internal/cache"
	"hetwire/internal/narrow"
	"hetwire/internal/noc"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
)

// Message sizes in bits (Section 3/4): a full operand or address transfer
// carries 64 bits of data plus up to 8 bits of tag on B/PW wires; an L-wire
// transfer carries 18 bits (8 tag + 10 data, or tag + LS address bits); the
// most-significant address bits follow on B-wires after an LS-bit prefix;
// a branch mispredict signal carries only the branch ID.
const (
	bitsFull    = 72
	bitsL       = 18
	bitsMSAddr  = 54
	bitsMispred = 8
)

// step advances the model by one dynamic instruction.
func (p *Processor) step(ins *trace.Instr) {
	seq := p.lsq.nextSeq()
	p.s.Instructions++
	myCfg := &p.cfg

	// ---------------- Fetch ----------------
	fetchReq := maxU(p.lastFetch, p.redirectAt)

	// Instruction-cache access on crossing into a new line (or after a
	// redirect, which clears curFetchLine).
	if line := ins.PC &^ uint64(myCfg.Core.LineBytes-1); line != p.curFetchLine {
		done, _ := p.mem.FetchAccess(ins.PC, fetchReq)
		if done > fetchReq+1 {
			fetchReq = done - 1 // miss: stall until the line arrives
		}
		p.curFetchLine = line
	}

	// Fetch-queue entry (freed at dispatch) and fetch bandwidth.
	fetchReq = maxU(fetchReq, p.fetchQ.Acquire(fetchReq))
	fetchAt := p.fetchCal.Reserve(fetchReq)

	// At most MaxBlocksFetch basic blocks per cycle: a block boundary is
	// the instruction after a taken branch.
	if p.pendingBlockStart {
		for {
			if fetchAt != p.blkCycle {
				p.blkCycle, p.blkCount = fetchAt, 1
				break
			}
			if p.blkCount < myCfg.Core.MaxBlocksFetch {
				p.blkCount++
				break
			}
			fetchAt = p.fetchCal.Reserve(fetchAt + 1)
		}
		p.pendingBlockStart = false
	}
	p.lastFetch = fetchAt

	// Branch prediction happens at fetch.
	mispredict := false
	if ins.Op == trace.Branch {
		p.s.Branches++
		dirCorrect := p.bp.UpdateDirection(ins.PC, ins.Taken)
		if ins.Taken {
			tgt, hit := p.bp.LookupTarget(ins.PC)
			if !hit || tgt != ins.Target {
				mispredict = true // misfetch: no (correct) target available
			}
			p.bp.UpdateTarget(ins.PC, ins.Target)
			p.pendingBlockStart = true
		}
		if !dirCorrect {
			mispredict = true
		}
		if mispredict {
			p.s.Mispredicts++
		}
	}

	// ---------------- Dispatch / rename / steer ----------------
	dispatchReq := maxU(fetchAt+frontDepth, p.lastDispatch)
	// ROB slot: instruction i needs the commit of instruction i-ROBSize.
	if oldest := p.rob[p.robPos]; oldest+1 > dispatchReq {
		dispatchReq = oldest + 1
	}

	clusterID := p.steer(ins, dispatchReq)
	cl := p.clusters[clusterID]
	iq, regs := cl.intIQ, cl.intRegs
	if ins.Op.IsFP() {
		iq, regs = cl.fpIQ, cl.fpRegs
	}
	dispatchReq = maxU(dispatchReq, iq.Acquire(dispatchReq))
	if ins.Dest != trace.NoReg {
		dispatchReq = maxU(dispatchReq, regs.Acquire(dispatchReq))
	}
	dispatchAt := p.dispatchCal.Reserve(dispatchReq)
	p.lastDispatch = dispatchAt
	p.fetchQ.Commit(dispatchAt)
	p.s.SumDispatchStall += dispatchAt - (fetchAt + frontDepth)

	// ---------------- Source operands ----------------
	ready := dispatchAt + 1
	var src2Ready uint64
	for si, src := range []int16{ins.Src1, ins.Src2} {
		if src == trace.NoReg {
			continue
		}
		at := p.operandReady(src, clusterID, dispatchAt)
		if si == 1 {
			src2Ready = at
			if ins.Op == trace.Store {
				// A store's data operand feeds the store-data transfer,
				// not address generation: stores issue AGEN as soon as the
				// base register is ready.
				continue
			}
		}
		if at > ready {
			ready = at
		}
	}

	p.s.SumSrcWait += ready - (dispatchAt + 1)

	// ---------------- Issue / execute ----------------
	issueAt := cl.fus[fuFor(ins.Op)].Reserve(ready)
	p.s.SumFUWait += issueAt - ready
	iq.Commit(issueAt + 1)
	execDone := issueAt + uint64(ins.Op.Latency())

	// ---------------- Op-specific back end ----------------
	completion := execDone
	destReady := execDone
	me := noc.Cluster(clusterID)

	switch ins.Op {
	case trace.Branch:
		if mispredict {
			class := wires.B
			if myCfg.Tech.MispredictOnL {
				class = wires.L
			} else if !p.cfg.Model.Link.Has(wires.B) {
				class = wires.PW
			}
			arrive := p.net.Transfer(me, noc.Cache, class, bitsMispred, execDone)
			if arrive+1 > p.redirectAt {
				p.redirectAt = arrive + 1
			}
			p.curFetchLine = 0 // refetch re-reads the I-cache
		}

	case trace.Load:
		p.s.Loads++
		t := p.sendAddress(me, seq, ins.Addr, execDone, true)
		var dataAt uint64
		level := cache.LevelL1
		if t.forwarded {
			p.s.StoreForwards++
			dataAt = t.dataAt
		} else {
			dataAt, level = p.mem.DataAccess(ins.Addr, t.indexReady, t.start)
		}
		retClass := wires.B
		retBits := bitsFull
		switch {
		case myCfg.Tech.CriticalWordOnL && level != cache.LevelL1 &&
			narrow.IsNarrow(ins.Value, myCfg.Core.NarrowMaxBits):
			// Critical-word return from L2/memory on L-wires: the cache
			// holds the value, so width detection is exact.
			retClass, retBits = wires.L, bitsL
			p.s.CriticalWordOnL++
		case !p.cfg.Model.Link.Has(wires.B):
			retClass = wires.PW
		case myCfg.Tech.PWLoadBalance && p.net.PreferPW(dataAt):
			retClass = wires.PW
			p.s.BalancePW++
		}
		destReady = p.net.Transfer(noc.Cache, me, retClass, retBits, dataAt)
		completion = destReady
		p.s.SumLoadLatency += destReady - execDone
		p.s.SumLSQWait += t.start - t.partialAt

	case trace.Store:
		p.s.Stores++
		t := p.sendAddress(me, seq, ins.Addr, execDone, false)
		// Store data ships to the LSQ when the data operand is ready
		// (criterion 2: PW wires, paper Section 4).
		dataStart := maxU(src2Ready, dispatchAt+1)
		dataClass := p.wideClass()
		switch {
		case myCfg.Tech.PWStoreData && p.net.PreferB(dataStart):
			// Symmetric balancing: the PW plane is the congested one right
			// now, so this store's data rides B instead.
		case myCfg.Tech.PWStoreData:
			dataClass = wires.PW
			p.s.StoreDataPW++
		case myCfg.Tech.PWLoadBalance && p.net.PreferPW(dataStart):
			dataClass = wires.PW
			p.s.BalancePW++
		}
		dataArr := p.net.Transfer(me, noc.Cache, dataClass, bitsFull, dataStart)
		completion = maxU(t.fullKnown, dataArr)
		lag := t.fullKnown - dispatchAt
		p.s.SumStoreAddrLag += lag
		if lag > p.s.MaxStoreAddrLag {
			p.s.MaxStoreAddrLag = lag
		}
		// The store occupies the LSQ until commit; its commit time is
		// computed below, so the entry is registered after that.
		p.pendingStore = lsqStore{
			seq:       seq,
			addr:      ins.Addr,
			partialAt: t.partialAt,
			fullAt:    t.fullKnown,
			dataAt:    dataArr,
		}
		p.havePendingStore = true
	}

	// ---------------- Commit ----------------
	commitReq := maxU(completion+1, p.lastCommit)
	commitAt := p.commitCal.Reserve(commitReq)
	p.lastCommit = commitAt
	p.rob[p.robPos] = commitAt
	p.robPos = (p.robPos + 1) % len(p.rob)

	if p.havePendingStore {
		p.pendingStore.commitAt = commitAt
		p.lsq.addStore(p.pendingStore)
		p.havePendingStore = false
	}

	if p.Observer != nil {
		p.Observer(InstrTiming{
			Seq: seq, PC: ins.PC, Op: ins.Op, Cluster: clusterID,
			Fetch: fetchAt, Dispatch: dispatchAt, Issue: issueAt,
			Complete: completion, Commit: commitAt, Mispred: mispredict,
		})
	}

	// ---------------- Writeback / rename update ----------------
	if ins.Dest != trace.NoReg {
		regs.Commit(commitAt)
		isNarrow := !ins.Op.IsFP() && narrow.IsNarrow(ins.Value, myCfg.Core.NarrowMaxBits)
		pred := false
		if !ins.Op.IsFP() && ins.Op != trace.Store {
			prePred := p.np.Record(ins.PC, isNarrow)
			switch {
			case myCfg.Tech.NarrowOracle:
				pred = isNarrow
			case myCfg.Tech.NarrowOperands:
				pred = prePred
			}
		}
		if myCfg.Tech.FrequentValueEnc && !ins.Op.IsFP() {
			p.fvt.Observe(ins.Value)
		}
		rs := &p.regs[ins.Dest]
		rs.cluster = clusterID
		rs.ready = destReady
		rs.value = ins.Value
		rs.narrow = isNarrow
		rs.predNarrow = pred
		rs.arrived = [maxClusters]uint64{}
	}
}

// operandReady returns the cycle the source register's value is available
// in the consuming cluster, inserting a copy transfer on the heterogeneous
// interconnect when the producer lives elsewhere. Copies are shared: a
// second consumer in the same cluster reuses the first transfer.
func (p *Processor) operandReady(src int16, clusterID int, dispatchAt uint64) uint64 {
	rs := &p.regs[src]
	if rs.cluster == clusterID {
		p.s.LocalOperands++
		return rs.ready
	}
	if got := rs.arrived[clusterID]; got != 0 {
		p.s.LocalOperands++ // already in flight to this cluster; shared copy
		return got
	}
	p.s.OperandTransfers++
	if rs.narrow {
		p.s.NarrowEligible++
	}

	from, to := noc.Cluster(rs.cluster), noc.Cluster(clusterID)
	start := maxU(rs.ready, dispatchAt+1)
	t := &p.cfg.Tech
	var arrive uint64
	switch {
	case t.NarrowOperands && rs.predNarrow && rs.narrow:
		arrive = p.net.Transfer(from, to, wires.L, bitsL, start)
		p.s.NarrowTransfers++
	case t.FrequentValueEnc && p.fvt.Contains(rs.value) &&
		p.net.PeekTransfer(from, to, wires.L, start) <= p.net.PeekTransfer(from, to, p.wideClass(), start):
		// The value is encodable as a 3-bit frequent-value index plus tag,
		// and the send buffer sees the L plane delivering no later than the
		// wide plane (L-wires are shared with the address LS bits, so a
		// congested L plane must not be flooded with compacted values).
		arrive = p.net.Transfer(from, to, wires.L, bitsL, start)
		p.s.FVTransfers++
	case t.NarrowOperands && rs.predNarrow && !rs.narrow:
		// Predicted narrow but wide: the L-wire transfer is wasted and the
		// value is re-sent on B-wires once the width is detected.
		p.net.Transfer(from, to, wires.L, bitsL, start)
		arrive = p.net.Transfer(from, to, p.wideClass(), bitsFull, start+1)
		p.s.NarrowMispredicted++
	case t.PWReadyOperands && rs.ready <= dispatchAt && !p.net.PreferB(start):
		arrive = p.net.Transfer(from, to, wires.PW, bitsFull, start)
		p.s.ReadyOperandPW++
	case t.PWLoadBalance && p.net.PreferPW(start):
		arrive = p.net.Transfer(from, to, wires.PW, bitsFull, start)
		p.s.BalancePW++
	case p.cfg.Model.Link.Has(wires.B):
		arrive = p.net.Transfer(from, to, wires.B, bitsFull, start)
	default:
		// Homogeneous PW interconnect (e.g. Model II).
		arrive = p.net.Transfer(from, to, wires.PW, bitsFull, start)
	}
	rs.arrived[clusterID] = arrive
	return arrive
}

// addrTiming bundles the LSQ arrival results for one memory operation.
type addrTiming struct {
	loadTiming
	partialAt uint64
	fullKnown uint64
}

// sendAddress transmits a load/store effective address from the cluster to
// the centralized LSQ, using the split LS-bits-on-L-wires pipeline when
// enabled. Loads additionally run memory disambiguation against earlier
// in-flight stores; stores only need their arrival times recorded.
func (p *Processor) sendAddress(from noc.Node, seq uint64, addr uint64, addrDone uint64, isLoad bool) addrTiming {
	t := &p.cfg.Tech
	if t.LWireCachePipeline {
		lsArr := p.net.Transfer(from, noc.Cache, wires.L, bitsL, addrDone)
		msArr := p.net.Transfer(from, noc.Cache, p.wideClass(), bitsMSAddr, addrDone)
		out := addrTiming{partialAt: lsArr, fullKnown: msArr}
		if isLoad {
			out.loadTiming = p.lsq.disambiguatePartial(seq, addr, lsArr, msArr)
			p.recordLSQ(out.loadTiming)
		}
		return out
	}
	class := wires.B
	if !p.cfg.Model.Link.Has(wires.B) {
		class = wires.PW
	} else if t.PWLoadBalance && p.net.PreferPW(addrDone) {
		class = wires.PW
		p.s.BalancePW++
	}
	full := p.net.Transfer(from, noc.Cache, class, bitsFull, addrDone)
	out := addrTiming{partialAt: full, fullKnown: full}
	if isLoad {
		out.loadTiming = p.lsq.disambiguateFull(seq, addr, full)
	}
	return out
}

func (p *Processor) recordLSQ(lt loadTiming) {
	if lt.partialChecked {
		p.s.PartialChecks++
		if lt.falseDep {
			p.s.PartialFalseDeps++
		}
	}
}

// wideClass returns the wire class used for full-width transfers that have
// no special steering: B-wires when the interconnect has them, else the
// homogeneous PW plane (Models II, III, VI).
func (p *Processor) wideClass() wires.Class {
	if p.cfg.Model.Link.Has(wires.B) {
		return wires.B
	}
	return wires.PW
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
