package core

import (
	"hetwire/internal/cache"
	"hetwire/internal/narrow"
	"hetwire/internal/noc"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
)

// Message sizes in bits (Section 3/4): a full operand or address transfer
// carries 64 bits of data plus up to 8 bits of tag on B/PW wires; an L-wire
// transfer carries 18 bits (8 tag + 10 data, or tag + LS address bits); the
// most-significant address bits follow on B-wires after an LS-bit prefix;
// a branch mispredict signal carries only the branch ID.
const (
	bitsFull    = 72
	bitsL       = 18
	bitsMSAddr  = 54
	bitsMispred = 8
)

// step advances the model by one dynamic instruction.
func (p *Processor) step(ins *trace.Instr) {
	seq := p.lsq.nextSeq()
	p.s.Instructions++
	myCfg := &p.cfg

	// ---------------- Fetch ----------------
	fetchReq := maxU(p.lastFetch, p.redirectAt)

	// Instruction-cache access on crossing into a new line (or after a
	// redirect, which clears curFetchLine).
	if line := ins.PC &^ uint64(myCfg.Core.LineBytes-1); line != p.curFetchLine {
		done, _ := p.mem.FetchAccess(ins.PC, fetchReq)
		if done > fetchReq+1 {
			fetchReq = done - 1 // miss: stall until the line arrives
		}
		p.curFetchLine = line
	}

	// Fetch-queue entry (freed at dispatch) and fetch bandwidth.
	fetchReq = maxU(fetchReq, p.fetchQ.Acquire(fetchReq))
	fetchAt := p.fetchCal.Reserve(fetchReq)

	// At most MaxBlocksFetch basic blocks per cycle: a block boundary is
	// the instruction after a taken branch.
	if p.pendingBlockStart {
		for {
			if fetchAt != p.blkCycle {
				p.blkCycle, p.blkCount = fetchAt, 1
				break
			}
			if p.blkCount < myCfg.Core.MaxBlocksFetch {
				p.blkCount++
				break
			}
			fetchAt = p.fetchCal.Reserve(fetchAt + 1)
		}
		p.pendingBlockStart = false
	}
	p.lastFetch = fetchAt

	// Branch prediction happens at fetch.
	mispredict := false
	if ins.Op == trace.Branch {
		p.s.Branches++
		dirCorrect := p.bp.UpdateDirection(ins.PC, ins.Taken)
		if ins.Taken {
			tgt, hit := p.bp.LookupTarget(ins.PC)
			if !hit || tgt != ins.Target {
				mispredict = true // misfetch: no (correct) target available
			}
			p.bp.UpdateTarget(ins.PC, ins.Target)
			p.pendingBlockStart = true
		}
		if !dirCorrect {
			mispredict = true
		}
		if mispredict {
			p.s.Mispredicts++
		}
	}

	// ---------------- Dispatch / rename / steer ----------------
	dispatchReq := maxU(fetchAt+frontDepth, p.lastDispatch)
	// ROB slot: instruction i needs the commit of instruction i-ROBSize.
	if oldest := p.rob[p.robPos]; oldest+1 > dispatchReq {
		dispatchReq = oldest + 1
	}

	clusterID := p.steer(ins, dispatchReq)
	cl := &p.clusters[clusterID]
	iq, regs, fp := cl.intIQ, cl.intRegs, 0
	if ins.Op.IsFP() {
		iq, regs, fp = cl.fpIQ, cl.fpRegs, 1
	}
	dispatchReq = maxU(dispatchReq, iq.Acquire(dispatchReq))
	if ins.Dest != trace.NoReg {
		dispatchReq = maxU(dispatchReq, regs.Acquire(dispatchReq))
	}
	dispatchAt := p.dispatchCal.Reserve(dispatchReq)
	p.lastDispatch = dispatchAt
	p.fetchQ.Commit(dispatchAt)
	p.s.SumDispatchStall += dispatchAt - (fetchAt + frontDepth)

	// ---------------- Source operands ----------------
	ready := dispatchAt + 1
	var src2Ready uint64
	if ins.Src1 != trace.NoReg {
		if at := p.operandReady(ins.Src1, clusterID, dispatchAt); at > ready {
			ready = at
		}
	}
	if ins.Src2 != trace.NoReg {
		at := p.operandReady(ins.Src2, clusterID, dispatchAt)
		src2Ready = at
		// A store's data operand feeds the store-data transfer, not address
		// generation: stores issue AGEN as soon as the base register is ready.
		if ins.Op != trace.Store && at > ready {
			ready = at
		}
	}

	p.s.SumSrcWait += ready - (dispatchAt + 1)

	// ---------------- Issue / execute ----------------
	issueAt := cl.fus[fuFor(ins.Op)].Reserve(ready)
	p.s.SumFUWait += issueAt - ready
	iq.Commit(issueAt + 1)
	// Patch the cached free row in place: the committed entry releases after
	// the row's cycle, so the wheel's exact occupancy is the row's new value.
	p.freeIQ[fp][clusterID] = int32(iq.Size() - iq.Occupied())
	execDone := issueAt + uint64(ins.Op.Latency())

	// ---------------- Op-specific back end ----------------
	completion := execDone
	destReady := execDone
	me := noc.Cluster(clusterID)

	switch ins.Op {
	case trace.Branch:
		if mispredict {
			arrive := p.net.Transfer(me, noc.Cache, p.mispredCls, bitsMispred, execDone)
			if arrive+1 > p.redirectAt {
				p.redirectAt = arrive + 1
			}
			p.curFetchLine = 0 // refetch re-reads the I-cache
		}

	case trace.Load:
		p.s.Loads++
		t := p.sendAddress(me, ins.Addr, execDone, true)
		var dataAt uint64
		level := cache.LevelL1
		if t.forwarded {
			p.s.StoreForwards++
			dataAt = t.dataAt
		} else {
			dataAt, level = p.mem.DataAccess(ins.Addr, t.indexReady, t.start)
		}
		retClass, retBits := p.wideCls, bitsFull
		if p.criticalOnL && level != cache.LevelL1 &&
			narrow.IsNarrow(ins.Value, p.narrowMax) {
			// Critical-word return from L2/memory on L-wires: the cache
			// holds the value, so width detection is exact.
			retClass, retBits = wires.L, bitsL
			p.s.CriticalWordOnL++
		} else if p.hasB && p.balanceOn && p.net.PreferPW(dataAt) {
			retClass = wires.PW
			p.s.BalancePW++
		}
		destReady = p.net.Transfer(noc.Cache, me, retClass, retBits, dataAt)
		completion = destReady
		p.s.SumLoadLatency += destReady - execDone
		p.s.SumLSQWait += t.start - t.partialAt

	case trace.Store:
		p.s.Stores++
		t := p.sendAddress(me, ins.Addr, execDone, false)
		// Store data ships to the LSQ when the data operand is ready
		// (criterion 2: PW wires, paper Section 4).
		dataStart := maxU(src2Ready, dispatchAt+1)
		dataClass := p.wideCls
		if p.pwStoreData {
			// Symmetric balancing: when the PW plane is the congested one
			// right now, this store's data rides B instead.
			if !p.net.PreferB(dataStart) {
				dataClass = wires.PW
				p.s.StoreDataPW++
			}
		} else if p.balanceOn && p.net.PreferPW(dataStart) {
			dataClass = wires.PW
			p.s.BalancePW++
		}
		dataArr := p.net.Transfer(me, noc.Cache, dataClass, bitsFull, dataStart)
		completion = maxU(t.fullKnown, dataArr)
		lag := t.fullKnown - dispatchAt
		p.s.SumStoreAddrLag += lag
		if lag > p.s.MaxStoreAddrLag {
			p.s.MaxStoreAddrLag = lag
		}
		// The store occupies the LSQ until commit; its commit time is
		// computed below, so the entry is registered after that.
		p.pendingStore = lsqStore{
			addr:      ins.Addr,
			partialAt: t.partialAt,
			fullAt:    t.fullKnown,
			dataAt:    dataArr,
		}
		p.havePendingStore = true
	}

	// ---------------- Commit ----------------
	commitReq := maxU(completion+1, p.lastCommit)
	commitAt := p.commitCal.Reserve(commitReq)
	p.lastCommit = commitAt
	p.rob[p.robPos] = commitAt
	p.robPos++
	if p.robPos == len(p.rob) {
		p.robPos = 0
	}

	if p.havePendingStore {
		p.pendingStore.commitAt = commitAt
		p.lsq.addStore(p.pendingStore)
		p.havePendingStore = false
	}

	if p.Observer != nil {
		p.Observer(InstrTiming{
			Seq: seq, PC: ins.PC, Op: ins.Op, Cluster: clusterID,
			Fetch: fetchAt, Dispatch: dispatchAt, Issue: issueAt,
			Complete: completion, Commit: commitAt, Mispred: mispredict,
		})
	}

	// ---------------- Writeback / rename update ----------------
	if ins.Dest != trace.NoReg {
		regs.Commit(commitAt)
		p.freeRegs[fp][clusterID] = int32(regs.Size() - regs.Occupied())
		isFP := ins.Op.IsFP()
		isNarrow := !isFP && narrow.IsNarrow(ins.Value, p.narrowMax)
		pred := false
		if !isFP && ins.Op != trace.Store {
			prePred := p.np.Record(ins.PC, isNarrow)
			switch {
			case p.narrowOrcl:
				pred = isNarrow
			case p.narrowOps:
				pred = prePred
			}
		}
		if p.fvEnabled && !isFP {
			p.fvt.Observe(ins.Value)
		}
		d := ins.Dest
		p.regCluster[d] = uint8(clusterID)
		p.regReady[d] = destReady
		p.regValue[d] = ins.Value
		p.regNarrow[d] = b2u8(isNarrow)
		p.regPredNarrow[d] = b2u8(pred)
		p.regGen[d]++ // invalidates every cached per-cluster copy time
	}
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// operandReady returns the cycle the source register's value is available
// in the consuming cluster, inserting a copy transfer on the heterogeneous
// interconnect when the producer lives elsewhere. Copies are shared: a
// second consumer in the same cluster reuses the first transfer (the
// arrived cache, generation-stamped against the producer's rename).
//
// The wire-class decision is the paper's priority ladder with its
// configuration-static part precomputed into xferTab (see initDerived); the
// frequent-value arm and the PreferB/PreferPW congestion checks are the only
// dynamic conditions left, evaluated in the ladder's original order so side
// effects (FV-table lookups, recent-injection pruning) are identical.
func (p *Processor) operandReady(src int16, clusterID int, dispatchAt uint64) uint64 {
	prodCluster := int(p.regCluster[src])
	if prodCluster == clusterID {
		p.s.LocalOperands++
		return p.regReady[src]
	}
	ai := int(src)*maxClusters + clusterID
	gen := p.regGen[src]
	if p.arrivedGen[ai] == gen {
		p.s.LocalOperands++ // already in flight to this cluster; shared copy
		return p.arrivedAt[ai]
	}
	p.s.OperandTransfers++
	nar := p.regNarrow[src]
	if nar != 0 {
		p.s.NarrowEligible++
	}

	from, to := noc.Cluster(prodCluster), noc.Cluster(clusterID)
	ready := p.regReady[src]
	start := maxU(ready, dispatchAt+1)
	ti := int(p.regPredNarrow[src])<<2 | int(nar)<<1
	if ready <= dispatchAt {
		ti |= 1
	}
	var arrive uint64
	if a := p.xferTab[ti]; a == xNarrowL {
		arrive = p.net.Transfer(from, to, wires.L, bitsL, start)
		p.s.NarrowTransfers++
	} else if p.fvEnabled && p.fvt.Contains(p.regValue[src]) &&
		p.net.PeekTransfer(from, to, wires.L, start) <= p.net.PeekTransfer(from, to, p.wideCls, start) {
		// The value is encodable as a 3-bit frequent-value index plus tag,
		// and the send buffer sees the L plane delivering no later than the
		// wide plane (L-wires are shared with the address LS bits, so a
		// congested L plane must not be flooded with compacted values).
		arrive = p.net.Transfer(from, to, wires.L, bitsL, start)
		p.s.FVTransfers++
	} else {
		wide := true
		switch a {
		case xNarrowMiss:
			// Predicted narrow but wide: the L-wire transfer is wasted and the
			// value is re-sent on B-wires once the width is detected.
			p.net.Transfer(from, to, wires.L, bitsL, start)
			arrive = p.net.Transfer(from, to, p.wideCls, bitsFull, start+1)
			p.s.NarrowMispredicted++
			wide = false
		case xReadyPW:
			if !p.net.PreferB(start) {
				arrive = p.net.Transfer(from, to, wires.PW, bitsFull, start)
				p.s.ReadyOperandPW++
				wide = false
			}
		}
		if wide {
			if p.balanceOn && p.net.PreferPW(start) {
				arrive = p.net.Transfer(from, to, wires.PW, bitsFull, start)
				p.s.BalancePW++
			} else {
				arrive = p.net.Transfer(from, to, p.wideCls, bitsFull, start)
			}
		}
	}
	p.arrivedAt[ai] = arrive
	p.arrivedGen[ai] = gen
	return arrive
}

// addrTiming bundles the LSQ arrival results for one memory operation.
type addrTiming struct {
	loadTiming
	partialAt uint64
	fullKnown uint64
}

// sendAddress transmits a load/store effective address from the cluster to
// the centralized LSQ, using the split LS-bits-on-L-wires pipeline when
// enabled. Loads additionally run memory disambiguation against earlier
// in-flight stores; stores only need their arrival times recorded.
func (p *Processor) sendAddress(from noc.Node, addr uint64, addrDone uint64, isLoad bool) addrTiming {
	if p.lwirePipe {
		lsArr := p.net.Transfer(from, noc.Cache, wires.L, bitsL, addrDone)
		msArr := p.net.Transfer(from, noc.Cache, p.wideCls, bitsMSAddr, addrDone)
		out := addrTiming{partialAt: lsArr, fullKnown: msArr}
		if isLoad {
			out.loadTiming = p.lsq.disambiguatePartial(addr, lsArr, msArr)
			p.recordLSQ(out.loadTiming)
		}
		return out
	}
	class := p.wideCls
	if p.hasB && p.balanceOn && p.net.PreferPW(addrDone) {
		class = wires.PW
		p.s.BalancePW++
	}
	full := p.net.Transfer(from, noc.Cache, class, bitsFull, addrDone)
	out := addrTiming{partialAt: full, fullKnown: full}
	if isLoad {
		out.loadTiming = p.lsq.disambiguateFull(addr, full)
	}
	return out
}

func (p *Processor) recordLSQ(lt loadTiming) {
	if lt.partialChecked {
		p.s.PartialChecks++
		if lt.falseDep {
			p.s.PartialFalseDeps++
		}
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
