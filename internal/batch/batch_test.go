package batch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunDeterministicOrdering: results land at their item index no matter
// how many workers race, so the output is identical at every parallelism.
func TestRunDeterministicOrdering(t *testing.T) {
	const n = 200
	for _, par := range []int{1, 2, 7, n} {
		out := make([]int, n)
		errs := Run(context.Background(), n, par, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("par=%d item %d: %v", par, i, errs[i])
			}
			if out[i] != i*i {
				t.Fatalf("par=%d out[%d] = %d, want %d", par, i, out[i], i*i)
			}
		}
	}
}

// TestRunErrorIsolation: one failing item records its error without
// disturbing any neighbour.
func TestRunErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	errs := Run(context.Background(), 10, 4, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	for i, err := range errs {
		if i == 3 {
			if !errors.Is(err, boom) {
				t.Errorf("item 3: err = %v, want boom", err)
			}
		} else if err != nil {
			t.Errorf("item %d: unexpected error %v", i, err)
		}
	}
}

// TestRunPanicContainment: a panicking item becomes that item's error; the
// batch and the other items complete.
func TestRunPanicContainment(t *testing.T) {
	errs := Run(context.Background(), 8, 4, func(_ context.Context, i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if errs[5] == nil || !strings.Contains(errs[5].Error(), "item 5 panicked: kaboom") {
		t.Errorf("errs[5] = %v, want contained panic", errs[5])
	}
	for i, err := range errs {
		if i != 5 && err != nil {
			t.Errorf("item %d: unexpected error %v", i, err)
		}
	}
}

// TestRunCancellation: cancelling mid-batch marks undispatched items with the
// context error; nothing hangs.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	var started atomic.Int32
	errs := Run(ctx, n, 1, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if got := started.Load(); got != 3 {
		t.Fatalf("%d items ran, want 3 (sequential run cancelled at item 2)", got)
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Errorf("item %d ran before cancel but errored: %v", i, errs[i])
		}
	}
	for i := 3; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestRunNestedSequential: an item that itself calls Run degrades to
// sequential under the held token — the composition contract — and the whole
// nest finishes without deadlocking the CPU pool even when the outer
// parallelism exceeds the pool.
func TestRunNestedSequential(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := Run(context.Background(), 2*CPU.Cap()+2, 0, func(ctx context.Context, i int) error {
			if !HasToken(ctx) {
				return fmt.Errorf("item %d context not marked with token", i)
			}
			inner := Run(ctx, 3, 0, func(ctx context.Context, j int) error {
				if !HasToken(ctx) {
					return fmt.Errorf("nested item %d context lost token mark", j)
				}
				return nil
			})
			for _, err := range inner {
				if err != nil {
					return err
				}
			}
			return nil
		})
		for i, err := range outer {
			if err != nil {
				t.Errorf("outer item %d: %v", i, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
}

// TestRunBoundsParallelism: at most parallelism items run at once.
func TestRunBoundsParallelism(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int32
	Run(context.Background(), 30, par, func(_ context.Context, _ int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if got := peak.Load(); got > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", got, par)
	}
}

func TestRunZeroItems(t *testing.T) {
	if errs := Run(context.Background(), 0, 4, nil); len(errs) != 0 {
		t.Errorf("Run(0 items) = %d errors", len(errs))
	}
}

// TestTokenPool covers the semaphore directly: capacity, blocking Acquire
// released by a peer, and cancellation while waiting.
func TestTokenPool(t *testing.T) {
	p := NewTokenPool(2)
	if p.Cap() != 2 || p.InUse() != 0 {
		t.Fatalf("fresh pool cap=%d inuse=%d", p.Cap(), p.InUse())
	}
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 2 {
		t.Fatalf("inuse = %d, want 2", p.InUse())
	}

	// A third Acquire blocks until a Release.
	acquired := make(chan error, 1)
	go func() { acquired <- p.Acquire(ctx) }()
	select {
	case err := <-acquired:
		t.Fatalf("Acquire on a full pool returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("Acquire after Release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire never observed the Release")
	}

	// Cancellation while waiting on a full pool returns the ctx error.
	cctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() { waitErr <- p.Acquire(cctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Acquire never returned")
	}

	p.Release()
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("inuse = %d after releasing all, want 0", p.InUse())
	}

	if NewTokenPool(0).Cap() != 1 {
		t.Error("NewTokenPool(0) should clamp to 1 token")
	}
}

// TestTokenPoolPriorityLanes: with the pool exhausted, an interactive-lane
// waiter that arrives AFTER a bulk waiter still gets the next released token;
// the bulk waiter gets the one after.
func TestTokenPoolPriorityLanes(t *testing.T) {
	p := NewTokenPool(1)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	bulkGot := make(chan struct{})
	go func() {
		if err := p.Acquire(ctx); err == nil {
			close(bulkGot)
		}
	}()
	time.Sleep(20 * time.Millisecond) // bulk waiter is queued first

	interGot := make(chan struct{})
	go func() {
		if err := p.Acquire(WithInteractive(ctx)); err == nil {
			close(interGot)
		}
	}()
	time.Sleep(20 * time.Millisecond)

	p.Release()
	select {
	case <-interGot:
	case <-bulkGot:
		t.Fatal("bulk waiter preempted the interactive waiter")
	case <-time.After(5 * time.Second):
		t.Fatal("no waiter observed the release")
	}
	p.Release()
	select {
	case <-bulkGot:
	case <-time.After(5 * time.Second):
		t.Fatal("bulk waiter never got the second token")
	}
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("inuse = %d after releasing all, want 0", p.InUse())
	}
}

func TestInteractiveMark(t *testing.T) {
	ctx := context.Background()
	if IsInteractive(ctx) {
		t.Error("fresh context is interactive")
	}
	if !IsInteractive(WithInteractive(ctx)) {
		t.Error("mark did not stick")
	}
}

func TestRunRangeAddressesAbsoluteIndices(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	errs := RunRange(context.Background(), 10, 17, 3, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		if i == 12 {
			return errors.New("slot failure")
		}
		return nil
	})
	if len(errs) != 7 {
		t.Fatalf("RunRange returned %d errors, want 7", len(errs))
	}
	for i := 10; i < 17; i++ {
		if !seen[i] {
			t.Errorf("absolute index %d never executed", i)
		}
	}
	// errs[k] belongs to absolute index 10+k.
	if errs[2] == nil || errs[2].Error() != "slot failure" {
		t.Errorf("errs[2] = %v, want the index-12 failure", errs[2])
	}
	for k, err := range errs {
		if k != 2 && err != nil {
			t.Errorf("errs[%d] = %v, want nil", k, err)
		}
	}

	// An empty or inverted range runs nothing.
	if n := len(RunRange(context.Background(), 5, 5, 1, nil)); n != 0 {
		t.Errorf("empty range returned %d errors", n)
	}
	if n := len(RunRange(context.Background(), 9, 5, 1, nil)); n != 0 {
		t.Errorf("inverted range returned %d errors", n)
	}
}
