// Package batch is the deterministic parallel execution engine for scenario
// sweeps: a bounded worker pool over an indexed work list, gated by a
// process-wide CPU-token semaphore so every parallel surface in the process
// — the hetwired worker pool, an intra-job batch, the experiment drivers —
// draws from one budget instead of oversubscribing the machine.
//
// Determinism contract: items are addressed by index, never by completion
// order. Run gives every item a dedicated slot in its result slice, so the
// output of a batch is identical at any parallelism level provided each
// item's own work is deterministic (simulations are). Scheduling order is
// unspecified; nothing observable may depend on it.
//
// Composition contract: an item's context is marked as holding a CPU token.
// A nested Run (an item that itself fans out) detects the mark and degrades
// to sequential execution in the caller's goroutine under the already-held
// token — nesting can never deadlock the token pool, it just doesn't
// multiply parallelism. Callers that want a flat N×M sweep to parallelize
// fully should expand it into one Run over N*M items.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// TokenPool is a counting semaphore of CPU execution slots with two waiter
// lanes: a released token goes to the oldest interactive-lane waiter first,
// then the oldest bulk waiter. Bulk work (sweeps, batches) acquires and
// releases a token per scenario, so an interactive job preempts a saturating
// sweep at scenario granularity — it waits for at most one scenario to
// finish, never for the whole sweep — without ever interrupting a running
// simulation. Lane selection is a context mark (WithInteractive); unmarked
// contexts wait in the bulk lane, which preserves pre-lane FIFO behaviour
// for everything that doesn't opt in.
type TokenPool struct {
	mu      sync.Mutex
	size    int
	free    int
	waiters [2][]chan struct{} // FIFO per lane; index laneInteractive/laneBulk
}

const (
	laneInteractive = 0
	laneBulk        = 1
)

// NewTokenPool creates a pool of n tokens (minimum 1).
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	return &TokenPool{size: n, free: n}
}

// CPU is the process-wide pool, sized to GOMAXPROCS at startup: one token
// per hardware execution slot the runtime will actually use.
var CPU = NewTokenPool(runtime.GOMAXPROCS(0))

// Cap reports the pool's token count.
func (p *TokenPool) Cap() int { return p.size }

// InUse reports how many tokens are currently held.
func (p *TokenPool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size - p.free
}

// Acquire takes a token, blocking until one is free or ctx is cancelled.
// Contended tokens are granted interactive lane first, FIFO within a lane.
func (p *TokenPool) Acquire(ctx context.Context) error {
	// A free token beats racing ctx, so an already-cancelled ctx still wins
	// only when the pool is empty (pre-lane behaviour, kept).
	if err := ctx.Err(); err != nil {
		return err
	}
	lane := laneBulk
	if IsInteractive(ctx) {
		lane = laneInteractive
	}
	p.mu.Lock()
	if p.free > 0 {
		p.free--
		p.mu.Unlock()
		return nil
	}
	ready := make(chan struct{})
	p.waiters[lane] = append(p.waiters[lane], ready)
	p.mu.Unlock()

	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		removed := false
		q := p.waiters[lane]
		for i := range q {
			if q[i] == ready {
				p.waiters[lane] = append(q[:i], q[i+1:]...)
				removed = true
				break
			}
		}
		p.mu.Unlock()
		if !removed {
			// Release raced us and granted the token to this waiter; hand it
			// back so it isn't leaked.
			<-ready
			p.Release()
		}
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire, handing it directly to the
// oldest interactive waiter, else the oldest bulk waiter, else the free pool.
func (p *TokenPool) Release() {
	p.mu.Lock()
	var ready chan struct{}
	for lane := laneInteractive; lane <= laneBulk; lane++ {
		if q := p.waiters[lane]; len(q) > 0 {
			ready = q[0]
			p.waiters[lane] = q[1:]
			break
		}
	}
	if ready == nil {
		if p.free == p.size {
			p.mu.Unlock()
			panic("batch: Release without a matching Acquire")
		}
		p.free++
	}
	p.mu.Unlock()
	if ready != nil {
		close(ready)
	}
}

type interactiveKey struct{}

// WithInteractive marks ctx as interactive-lane work: its token acquisitions
// jump ahead of bulk waiters. The hetwired daemon marks single-scenario
// ("run") jobs; sweeps and batches stay in the bulk lane.
func WithInteractive(ctx context.Context) context.Context {
	return context.WithValue(ctx, interactiveKey{}, true)
}

// IsInteractive reports whether ctx carries the interactive-lane mark.
func IsInteractive(ctx context.Context) bool {
	v, _ := ctx.Value(interactiveKey{}).(bool)
	return v
}

type tokenKey struct{}

// WithToken marks ctx as running under a held CPU token. Work started under
// this context must not acquire a second token (see HasToken).
func WithToken(ctx context.Context) context.Context {
	return context.WithValue(ctx, tokenKey{}, true)
}

// HasToken reports whether ctx is already running under a CPU token, i.e.
// the caller is inside an item of some Run (or another token-holding frame)
// and must not block on the pool again.
func HasToken(ctx context.Context) bool {
	v, _ := ctx.Value(tokenKey{}).(bool)
	return v
}

// Run executes fn(ctx, i) for every i in [0, n) with at most parallelism
// concurrent executions, each holding one CPU token from the shared pool.
// It returns a slice of n per-item errors in index order:
//
//   - a nil entry is a completed item;
//   - an item whose fn returned an error (or panicked — panics are contained
//     per item) records that error without affecting any other item;
//   - cancelling ctx stops the whole batch: items not yet started record
//     ctx's error, items already running finish under their own ctx.
//
// parallelism <= 0 means the CPU pool capacity. A nested call (ctx already
// holds a token) runs sequentially under the held token; see the package
// comment for the composition contract.
func Run(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if parallelism <= 0 {
		parallelism = CPU.Cap()
	}
	if parallelism > n {
		parallelism = n
	}
	if HasToken(ctx) || parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = runOne(ctx, i, fn)
		}
		return errs
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Each worker writes only its own index; no lock needed.
				errs[i] = runOne(ctx, i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return errs
}

// RunRange is the shard-execution entry point: it runs fn(ctx, i) for every
// absolute index i in [start, end) with the same token, panic-containment,
// and cancellation semantics as Run, returning end-start per-item errors
// where errs[k] belongs to absolute index start+k. A cluster node executes
// its work lease — one contiguous shard of a batch's scenario index space —
// through this, so shard execution composes with local parallel surfaces on
// the one process-wide CPU-token budget.
func RunRange(ctx context.Context, start, end, parallelism int, fn func(ctx context.Context, i int) error) []error {
	if end < start {
		end = start
	}
	return Run(ctx, end-start, parallelism, func(ctx context.Context, k int) error {
		return fn(ctx, start+k)
	})
}

// runOne executes a single item: acquire a CPU token unless the context
// already holds one, mark the item context, contain panics.
func runOne(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	if !HasToken(ctx) {
		if err := CPU.Acquire(ctx); err != nil {
			return err
		}
		defer CPU.Release()
		ctx = WithToken(ctx)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch: item %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i)
}
