// Package batch is the deterministic parallel execution engine for scenario
// sweeps: a bounded worker pool over an indexed work list, gated by a
// process-wide CPU-token semaphore so every parallel surface in the process
// — the hetwired worker pool, an intra-job batch, the experiment drivers —
// draws from one budget instead of oversubscribing the machine.
//
// Determinism contract: items are addressed by index, never by completion
// order. Run gives every item a dedicated slot in its result slice, so the
// output of a batch is identical at any parallelism level provided each
// item's own work is deterministic (simulations are). Scheduling order is
// unspecified; nothing observable may depend on it.
//
// Composition contract: an item's context is marked as holding a CPU token.
// A nested Run (an item that itself fans out) detects the mark and degrades
// to sequential execution in the caller's goroutine under the already-held
// token — nesting can never deadlock the token pool, it just doesn't
// multiply parallelism. Callers that want a flat N×M sweep to parallelize
// fully should expand it into one Run over N*M items.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// TokenPool is a counting semaphore of CPU execution slots.
type TokenPool struct {
	ch chan struct{}
}

// NewTokenPool creates a pool of n tokens (minimum 1).
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	return &TokenPool{ch: make(chan struct{}, n)}
}

// CPU is the process-wide pool, sized to GOMAXPROCS at startup: one token
// per hardware execution slot the runtime will actually use.
var CPU = NewTokenPool(runtime.GOMAXPROCS(0))

// Cap reports the pool's token count.
func (p *TokenPool) Cap() int { return cap(p.ch) }

// InUse reports how many tokens are currently held.
func (p *TokenPool) InUse() int { return len(p.ch) }

// Acquire takes a token, blocking until one is free or ctx is cancelled.
func (p *TokenPool) Acquire(ctx context.Context) error {
	// Fast path: a free token beats racing ctx in select's random choice,
	// so an already-cancelled ctx still wins only when the pool is empty.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.ch <- struct{}{}:
		return nil
	default:
	}
	select {
	case p.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire.
func (p *TokenPool) Release() { <-p.ch }

type tokenKey struct{}

// WithToken marks ctx as running under a held CPU token. Work started under
// this context must not acquire a second token (see HasToken).
func WithToken(ctx context.Context) context.Context {
	return context.WithValue(ctx, tokenKey{}, true)
}

// HasToken reports whether ctx is already running under a CPU token, i.e.
// the caller is inside an item of some Run (or another token-holding frame)
// and must not block on the pool again.
func HasToken(ctx context.Context) bool {
	v, _ := ctx.Value(tokenKey{}).(bool)
	return v
}

// Run executes fn(ctx, i) for every i in [0, n) with at most parallelism
// concurrent executions, each holding one CPU token from the shared pool.
// It returns a slice of n per-item errors in index order:
//
//   - a nil entry is a completed item;
//   - an item whose fn returned an error (or panicked — panics are contained
//     per item) records that error without affecting any other item;
//   - cancelling ctx stops the whole batch: items not yet started record
//     ctx's error, items already running finish under their own ctx.
//
// parallelism <= 0 means the CPU pool capacity. A nested call (ctx already
// holds a token) runs sequentially under the held token; see the package
// comment for the composition contract.
func Run(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if parallelism <= 0 {
		parallelism = CPU.Cap()
	}
	if parallelism > n {
		parallelism = n
	}
	if HasToken(ctx) || parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = runOne(ctx, i, fn)
		}
		return errs
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Each worker writes only its own index; no lock needed.
				errs[i] = runOne(ctx, i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return errs
}

// RunRange is the shard-execution entry point: it runs fn(ctx, i) for every
// absolute index i in [start, end) with the same token, panic-containment,
// and cancellation semantics as Run, returning end-start per-item errors
// where errs[k] belongs to absolute index start+k. A cluster node executes
// its work lease — one contiguous shard of a batch's scenario index space —
// through this, so shard execution composes with local parallel surfaces on
// the one process-wide CPU-token budget.
func RunRange(ctx context.Context, start, end, parallelism int, fn func(ctx context.Context, i int) error) []error {
	if end < start {
		end = start
	}
	return Run(ctx, end-start, parallelism, func(ctx context.Context, k int) error {
		return fn(ctx, start+k)
	})
}

// runOne executes a single item: acquire a CPU token unless the context
// already holds one, mark the item context, contain panics.
func runOne(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	if !HasToken(ctx) {
		if err := CPU.Acquire(ctx); err != nil {
			return err
		}
		defer CPU.Release()
		ctx = WithToken(ctx)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch: item %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i)
}
