// Package tenant implements multi-tenant identity and resource accounting
// for the hetwired daemon: a registry of API-keyed tenants loaded from a
// JSON config file, per-tenant token-bucket rate limits, and the counters
// (sim-CPU seconds, queue slots, in-flight jobs, cache bytes) that the
// weighted-fair scheduler and the /metrics exposition read.
//
// The daemon without a tenants file runs in open mode: every request maps
// to the built-in anonymous tenant with no limits, which preserves the
// pre-tenancy behaviour exactly. With a tenants file, requests carrying a
// known API key (X-Hetwire-Tenant or Authorization: Bearer) run as that
// tenant; requests with no key still run as anonymous (optionally limited
// via the "anonymous" config block); requests with an unknown key are
// rejected.
package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AnonymousName is the reserved identity for requests carrying no API key.
const AnonymousName = "anonymous"

// Bounds on a tenants config. The tenant count cap also bounds the
// hetwired_tenant_* metric label sets and the scheduler's per-tenant state.
const (
	MaxTenants = 256
	MaxNameLen = 32
	MaxKeyLen  = 128
	MaxWeight  = 1000
	MaxBurst   = 1_000_000
	// MaxRatePerSec bounds the token-bucket refill rate so refill arithmetic
	// stays well-conditioned.
	MaxRatePerSec = 1e6
	// MaxSLOMS bounds a latency objective to one hour; larger objectives are
	// config typos, not serving goals.
	MaxSLOMS = 3_600_000
)

// Spec is one tenant's declared identity and resource policy, as written in
// the -tenants config file.
type Spec struct {
	// Name labels the tenant in job status, logs, lease records, and metrics.
	// Lowercase [a-z0-9._-], at most MaxNameLen bytes. "anonymous" and
	// "other" are reserved.
	Name string `json:"name"`
	// Key is the API key presented via X-Hetwire-Tenant (or Authorization:
	// Bearer on non-cluster routes). Required for named tenants; must be
	// empty on the anonymous block.
	Key string `json:"key,omitempty"`
	// Weight is the tenant's share of simulation CPU under the weighted-fair
	// scheduler (default 1): a weight-3 tenant saturating the daemon gets 3x
	// the sim-CPU of a saturating weight-1 tenant.
	Weight int `json:"weight,omitempty"`
	// RatePerSec is the tenant's submission token-bucket refill rate; zero
	// means unlimited. Rejections carry reason tenant_rate_limited and a
	// Retry-After derived from this bucket's refill time.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: ceil(RatePerSec), minimum 1).
	Burst int `json:"burst,omitempty"`
	// QueueShare caps the fraction of the global queue depth this tenant may
	// occupy, (0,1]; zero or 1 means no per-tenant cap. Rejections carry
	// reason tenant_queue_share.
	QueueShare float64 `json:"queue_share,omitempty"`
	// SLOMS is the tenant's end-to-end latency objective in milliseconds:
	// a completed request is "good" when its wall clock is at or under it.
	// Zero means no SLO — the hetwired_slo_* counters and burn-rate gauges
	// are not emitted for this tenant.
	SLOMS float64 `json:"slo_ms,omitempty"`
	// SLOTargetPct is the fraction of requests that must be good, in percent
	// (default 99 when SLOMS is set). The burn-rate gauges divide the
	// observed bad fraction by the implied error budget (1 - target), so a
	// burn rate of 1.0 means the budget is being consumed exactly on
	// schedule and anything higher is an incident signal.
	SLOTargetPct float64 `json:"slo_target_pct,omitempty"`
}

// Config is the -tenants file: named tenants plus an optional policy block
// for the anonymous (keyless) tenant.
type Config struct {
	Tenants []Spec `json:"tenants"`
	// Anonymous, when present, applies limits to keyless requests. Absent,
	// anonymous requests stay unlimited (weight 1).
	Anonymous *Spec `json:"anonymous,omitempty"`
}

// ParseConfig decodes and validates a tenants file. Unknown fields and
// trailing garbage are rejected so a typo'd policy fails loudly at startup
// instead of silently not limiting anyone.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("tenant: decoding config: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("tenant: trailing data after config document")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the config's bounds and uniqueness invariants.
func (c *Config) Validate() error {
	if len(c.Tenants) > MaxTenants {
		return fmt.Errorf("tenant: %d tenants exceeds the limit of %d", len(c.Tenants), MaxTenants)
	}
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		sp := &c.Tenants[i]
		if err := sp.validate(false); err != nil {
			return fmt.Errorf("tenant: tenants[%d]: %w", i, err)
		}
		if names[sp.Name] {
			return fmt.Errorf("tenant: duplicate tenant name %q", sp.Name)
		}
		if keys[sp.Key] {
			return fmt.Errorf("tenant: duplicate API key (tenant %q)", sp.Name)
		}
		names[sp.Name] = true
		keys[sp.Key] = true
	}
	if c.Anonymous != nil {
		if err := c.Anonymous.validate(true); err != nil {
			return fmt.Errorf("tenant: anonymous: %w", err)
		}
	}
	return nil
}

// Canonical renders the validated config in its canonical form: stable field
// order, defaults left implicit. Parsing a canonical document and rendering
// it again is byte-identical (the fuzz target's round-trip property).
func (c *Config) Canonical() ([]byte, error) {
	return json.Marshal(c)
}

func (s *Spec) validate(anonymous bool) error {
	if anonymous {
		if s.Name != "" && s.Name != AnonymousName {
			return fmt.Errorf("name must be empty or %q, got %q", AnonymousName, s.Name)
		}
		if s.Key != "" {
			return errors.New("the anonymous tenant cannot carry an API key")
		}
	} else {
		if !validName(s.Name) {
			return fmt.Errorf("invalid name %q (want 1..%d bytes of [a-z0-9._-])", s.Name, MaxNameLen)
		}
		if s.Name == AnonymousName || s.Name == "other" {
			return fmt.Errorf("name %q is reserved", s.Name)
		}
		if !validKey(s.Key) {
			return fmt.Errorf("tenant %q: invalid key (want 1..%d printable non-space ASCII bytes)", s.Name, MaxKeyLen)
		}
	}
	if s.Weight < 0 || s.Weight > MaxWeight {
		return fmt.Errorf("weight %d out of range [0,%d]", s.Weight, MaxWeight)
	}
	if s.RatePerSec < 0 || s.RatePerSec > MaxRatePerSec || math.IsNaN(s.RatePerSec) {
		return fmt.Errorf("rate_per_sec %v out of range [0,%v]", s.RatePerSec, float64(MaxRatePerSec))
	}
	if s.Burst < 0 || s.Burst > MaxBurst {
		return fmt.Errorf("burst %d out of range [0,%d]", s.Burst, MaxBurst)
	}
	if s.Burst > 0 && s.RatePerSec <= 0 {
		return errors.New("burst without rate_per_sec has no effect; drop it or set a rate")
	}
	if s.QueueShare < 0 || s.QueueShare > 1 || math.IsNaN(s.QueueShare) {
		return fmt.Errorf("queue_share %v out of range [0,1]", s.QueueShare)
	}
	if s.SLOMS < 0 || s.SLOMS > MaxSLOMS || math.IsNaN(s.SLOMS) {
		return fmt.Errorf("slo_ms %v out of range [0,%d]", s.SLOMS, MaxSLOMS)
	}
	if s.SLOTargetPct < 0 || s.SLOTargetPct >= 100 || math.IsNaN(s.SLOTargetPct) {
		return fmt.Errorf("slo_target_pct %v out of range [0,100)", s.SLOTargetPct)
	}
	if s.SLOTargetPct > 0 && s.SLOMS <= 0 {
		return errors.New("slo_target_pct without slo_ms has no effect; drop it or set an objective")
	}
	return nil
}

func validName(name string) bool {
	if name == "" || len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func validKey(key string) bool {
	if key == "" || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] > '~' {
			return false
		}
	}
	return true
}

// Tenant is the runtime state behind one Spec: the token bucket gating
// submissions and the accounting counters the scheduler and /metrics read.
// All methods are safe for concurrent use.
type Tenant struct {
	spec Spec

	// Token bucket (RatePerSec > 0 only). tokens is the fractional fill at
	// time last; refill happens lazily on each Allow/RetryAfter call.
	bucketMu sync.Mutex
	tokens   float64
	last     time.Time

	// simCPUNanos accumulates measured simulation CPU charged to the tenant's
	// completed jobs; it is both the fairness test's observable and the
	// numerator of the scheduler's virtual time.
	simCPUNanos atomic.Int64
	queued      atomic.Int64
	inFlight    atomic.Int64
	// cacheBytes counts result-cache bytes attributed on insert: the tenant
	// whose job filled the entry pays for it (later cross-tenant hits ride
	// free — deterministic results are shared by design).
	cacheBytes atomic.Int64

	submitted atomic.Uint64
	done      atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64

	rejMu    sync.Mutex
	rejected map[string]uint64
}

func newTenant(spec Spec) *Tenant {
	t := &Tenant{spec: spec, rejected: make(map[string]uint64)}
	t.tokens = t.burst()
	return t
}

// Name returns the tenant's identity label.
func (t *Tenant) Name() string { return t.spec.Name }

// Weight returns the scheduling weight (minimum 1).
func (t *Tenant) Weight() int {
	if t.spec.Weight <= 0 {
		return 1
	}
	return t.spec.Weight
}

// SLO returns the tenant's latency objective in milliseconds and its target
// percentage, defaulting the target to 99 when only slo_ms is set. Both are
// zero when the tenant has no SLO configured.
func (t *Tenant) SLO() (ms, targetPct float64) {
	if t.spec.SLOMS <= 0 {
		return 0, 0
	}
	target := t.spec.SLOTargetPct
	if target <= 0 {
		target = 99
	}
	return t.spec.SLOMS, target
}

// QueueShareCap resolves the tenant's queue-slot cap against the global
// queue depth; 0 means uncapped.
func (t *Tenant) QueueShareCap(queueDepth int) int {
	s := t.spec.QueueShare
	if s <= 0 || s >= 1 {
		return 0
	}
	slots := int(math.Ceil(s * float64(queueDepth)))
	if slots < 1 {
		slots = 1
	}
	return slots
}

func (t *Tenant) burst() float64 {
	if t.spec.Burst > 0 {
		return float64(t.spec.Burst)
	}
	if t.spec.RatePerSec >= 1 {
		return math.Ceil(t.spec.RatePerSec)
	}
	return 1
}

func (t *Tenant) refillLocked(now time.Time) {
	if t.last.IsZero() {
		t.last = now
		return
	}
	if d := now.Sub(t.last); d > 0 {
		t.tokens = math.Min(t.burst(), t.tokens+d.Seconds()*t.spec.RatePerSec)
	}
	t.last = now
}

// Allow consumes one submission token, reporting false when the tenant's
// rate limit is exhausted. Unlimited tenants (RatePerSec 0) always pass.
func (t *Tenant) Allow(now time.Time) bool {
	if t.spec.RatePerSec <= 0 {
		return true
	}
	t.bucketMu.Lock()
	defer t.bucketMu.Unlock()
	t.refillLocked(now)
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// RetryAfter estimates when the bucket next holds a whole token — the
// per-tenant Retry-After on a tenant_rate_limited rejection. Zero for
// unlimited tenants.
func (t *Tenant) RetryAfter(now time.Time) time.Duration {
	if t.spec.RatePerSec <= 0 {
		return 0
	}
	t.bucketMu.Lock()
	defer t.bucketMu.Unlock()
	t.refillLocked(now)
	if t.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - t.tokens) / t.spec.RatePerSec * float64(time.Second))
}

// Accounting mutators, called by the daemon at admission, dispatch, and
// completion.

func (t *Tenant) AddSimCPU(d time.Duration) { t.simCPUNanos.Add(int64(d)) }
func (t *Tenant) AddCacheBytes(n int64)     { t.cacheBytes.Add(n) }
func (t *Tenant) IncQueued()                { t.queued.Add(1) }
func (t *Tenant) DecQueued()                { t.queued.Add(-1) }
func (t *Tenant) IncInFlight()              { t.inFlight.Add(1) }
func (t *Tenant) DecInFlight()              { t.inFlight.Add(-1) }
func (t *Tenant) CountSubmitted()           { t.submitted.Add(1) }

// CountTerminal records one job reaching the given terminal state
// ("done", "failed", or "cancelled").
func (t *Tenant) CountTerminal(state string) {
	switch state {
	case "done":
		t.done.Add(1)
	case "failed":
		t.failed.Add(1)
	case "cancelled":
		t.cancelled.Add(1)
	}
}

// CountRejection records one admission rejection by reason code. The label
// set is bounded by the daemon's reason-code set, not by client input.
func (t *Tenant) CountRejection(reason string) {
	t.rejMu.Lock()
	defer t.rejMu.Unlock()
	t.rejected[reason]++
}

// SimCPU reports the total simulation CPU charged to this tenant.
func (t *Tenant) SimCPU() time.Duration {
	return time.Duration(t.simCPUNanos.Load())
}

// Snapshot is a point-in-time copy of one tenant's counters for /metrics
// and the /v1/tenants/usage report.
type Snapshot struct {
	Name       string
	Weight     int
	SLOMS      float64
	SLOTarget  float64
	SimCPU     time.Duration
	Queued     int64
	InFlight   int64
	CacheBytes int64
	Submitted  uint64
	Done       uint64
	Failed     uint64
	Cancelled  uint64
	Rejected   map[string]uint64
}

// Snapshot copies the tenant's counters.
func (t *Tenant) Snapshot() Snapshot {
	sloMS, sloTarget := t.SLO()
	sn := Snapshot{
		Name:       t.Name(),
		Weight:     t.Weight(),
		SLOMS:      sloMS,
		SLOTarget:  sloTarget,
		SimCPU:     t.SimCPU(),
		Queued:     t.queued.Load(),
		InFlight:   t.inFlight.Load(),
		CacheBytes: t.cacheBytes.Load(),
		Submitted:  t.submitted.Load(),
		Done:       t.done.Load(),
		Failed:     t.failed.Load(),
		Cancelled:  t.cancelled.Load(),
	}
	t.rejMu.Lock()
	if len(t.rejected) > 0 {
		sn.Rejected = make(map[string]uint64, len(t.rejected))
		for k, v := range t.rejected {
			sn.Rejected[k] = v
		}
	}
	t.rejMu.Unlock()
	return sn
}

// Registry resolves API keys to runtime tenants. Built once at startup;
// lookups are lock-free reads of immutable maps.
type Registry struct {
	open  bool
	byKey map[string]*Tenant
	anon  *Tenant
	all   []*Tenant // name-sorted, anonymous included
}

// NewRegistry builds the runtime registry. A nil config is open mode: only
// the unlimited anonymous tenant exists and API keys are ignored.
func NewRegistry(cfg *Config) *Registry {
	r := &Registry{open: cfg == nil, byKey: make(map[string]*Tenant)}
	anonSpec := Spec{Name: AnonymousName}
	if cfg != nil && cfg.Anonymous != nil {
		anonSpec = *cfg.Anonymous
		anonSpec.Name = AnonymousName
		anonSpec.Key = ""
	}
	r.anon = newTenant(anonSpec)
	r.all = append(r.all, r.anon)
	if cfg != nil {
		for i := range cfg.Tenants {
			t := newTenant(cfg.Tenants[i])
			r.byKey[cfg.Tenants[i].Key] = t
			r.all = append(r.all, t)
		}
	}
	sort.Slice(r.all, func(i, j int) bool { return r.all[i].Name() < r.all[j].Name() })
	return r
}

// Open reports whether the registry runs in open (keyless) mode.
func (r *Registry) Open() bool { return r.open }

// Anonymous returns the built-in keyless tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Lookup resolves an API key. An empty key is the anonymous tenant; in open
// mode every key resolves to anonymous (keys are ignored, not rejected).
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	if key == "" || r.open {
		return r.anon, true
	}
	t, ok := r.byKey[key]
	return t, ok
}

// All returns every tenant in name order (metrics rendering).
func (r *Registry) All() []*Tenant { return r.all }

// Snapshots returns a name-ordered counter snapshot of every tenant.
func (r *Registry) Snapshots() []Snapshot {
	out := make([]Snapshot, len(r.all))
	for i, t := range r.all {
		out[i] = t.Snapshot()
	}
	return out
}

type ctxKey struct{}

// NewContext stamps the tenant into ctx so code deep in the execution path
// (the cache fill, cluster upload accounting) can attribute resource use
// without threading a tenant parameter through every layer.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant stamped by NewContext, or nil.
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}
