package tenant

import (
	"bytes"
	"testing"
)

// FuzzTenantConfig drives the tenants-file parser with arbitrary bytes. Two
// properties: ParseConfig never panics, and every accepted config round-trips
// through its canonical form — Canonical() re-parses, and rendering the
// re-parse is byte-identical (the canonical form is a fixed point). Seeds
// cover the full policy surface plus near-miss rejections so the fuzzer
// starts on both sides of every validation.
func FuzzTenantConfig(f *testing.F) {
	seeds := []string{
		`{"tenants": []}`,
		`{"tenants": [{"name": "acme", "key": "k-acme"}]}`,
		`{"tenants": [{"name": "acme", "key": "k-acme", "weight": 3, "rate_per_sec": 10, "burst": 20, "queue_share": 0.5},
		  {"name": "beta", "key": "k-beta", "weight": 1}],
		  "anonymous": {"rate_per_sec": 2, "burst": 4, "queue_share": 0.25}}`,
		`{"tenants": [{"name": "anonymous", "key": "k"}]}`,
		`{"tenants": [{"name": "a", "key": "k"}, {"name": "a", "key": "k2"}]}`,
		`{"tenants": [{"name": "a", "key": "k", "queue_share": 1.5}]}`,
		`{"tenants": [{"name": "a", "key": "k", "burst": 5}]}`,
		`{"tenants": [{"name": "a", "key": "k"}]} trailing`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		c1, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("accepted config failed to render canonically: %v", err)
		}
		cfg2, err := ParseConfig(c1)
		if err != nil {
			t.Fatalf("canonical form rejected by its own parser: %v\n%s", err, c1)
		}
		c2, err := cfg2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\n%s", c1, c2)
		}
		// The registry must come up on any accepted config.
		r := NewRegistry(cfg)
		if r.Anonymous() == nil || len(r.All()) != len(cfg.Tenants)+1 {
			t.Fatalf("registry shape wrong for accepted config: %d tenants", len(r.All()))
		}
	})
}
