package tenant

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"tenants": [
			{"name": "acme", "key": "k-acme", "weight": 3, "rate_per_sec": 10, "queue_share": 0.5},
			{"name": "beta", "key": "k-beta"}
		],
		"anonymous": {"rate_per_sec": 2, "burst": 4}
	}`))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(cfg.Tenants) != 2 || cfg.Anonymous == nil {
		t.Fatalf("unexpected config shape: %+v", cfg)
	}
	if cfg.Tenants[0].Weight != 3 || cfg.Tenants[0].QueueShare != 0.5 {
		t.Errorf("acme spec mangled: %+v", cfg.Tenants[0])
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"tenants": [{"name": "a", "key": "k", "wieght": 3}]}`,
		"trailing data":   `{"tenants": []} {"tenants": []}`,
		"empty name":      `{"tenants": [{"name": "", "key": "k"}]}`,
		"uppercase name":  `{"tenants": [{"name": "Acme", "key": "k"}]}`,
		"reserved anon":   `{"tenants": [{"name": "anonymous", "key": "k"}]}`,
		"reserved other":  `{"tenants": [{"name": "other", "key": "k"}]}`,
		"missing key":     `{"tenants": [{"name": "acme"}]}`,
		"key with space":  `{"tenants": [{"name": "acme", "key": "a b"}]}`,
		"dup name":        `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`,
		"dup key":         `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`,
		"negative weight": `{"tenants": [{"name": "a", "key": "k", "weight": -1}]}`,
		"huge weight":     `{"tenants": [{"name": "a", "key": "k", "weight": 1001}]}`,
		"negative rate":   `{"tenants": [{"name": "a", "key": "k", "rate_per_sec": -1}]}`,
		"burst sans rate": `{"tenants": [{"name": "a", "key": "k", "burst": 5}]}`,
		"share over 1":    `{"tenants": [{"name": "a", "key": "k", "queue_share": 1.5}]}`,
		"anon with key":   `{"anonymous": {"key": "k"}}`,
		"anon bad name":   `{"anonymous": {"name": "acme"}}`,
	}
	for label, doc := range cases {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("%s: config accepted, want rejection: %s", label, doc)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"tenants": [{"name": "a", "key": "k", "weight": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := ParseConfig(c1)
	if err != nil {
		t.Fatalf("canonical form failed to re-parse: %v\n%s", err, c1)
	}
	c2, err := cfg2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("canonical form is not a fixed point:\n%s\n%s", c1, c2)
	}
}

func TestRegistryLookup(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"tenants": [{"name": "acme", "key": "k-acme", "weight": 3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(cfg)
	if r.Open() {
		t.Error("configured registry reports open mode")
	}
	if tn, ok := r.Lookup("k-acme"); !ok || tn.Name() != "acme" || tn.Weight() != 3 {
		t.Errorf("Lookup(k-acme) = %v, %t", tn, ok)
	}
	if tn, ok := r.Lookup(""); !ok || tn.Name() != AnonymousName {
		t.Errorf("Lookup(\"\") = %v, %t; want anonymous", tn, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("unknown key resolved")
	}

	open := NewRegistry(nil)
	if !open.Open() {
		t.Error("nil-config registry is not open")
	}
	if tn, ok := open.Lookup("anything"); !ok || tn != open.Anonymous() {
		t.Error("open mode should resolve every key to anonymous")
	}
}

func TestRegistryAllSorted(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"tenants": [
		{"name": "zeta", "key": "kz"}, {"name": "acme", "key": "ka"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tn := range NewRegistry(cfg).All() {
		names = append(names, tn.Name())
	}
	if got := strings.Join(names, ","); got != "acme,anonymous,zeta" {
		t.Errorf("All() order = %s", got)
	}
}

func TestTokenBucket(t *testing.T) {
	tn := newTenant(Spec{Name: "a", RatePerSec: 2, Burst: 2})
	now := time.Unix(1000, 0)
	if !tn.Allow(now) || !tn.Allow(now) {
		t.Fatal("burst of 2 should admit two submissions")
	}
	if tn.Allow(now) {
		t.Fatal("third submission at t=0 should be limited")
	}
	// At 2 tokens/s the next whole token is 500ms out.
	if ra := tn.RetryAfter(now); ra <= 0 || ra > 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want (0, 500ms]", ra)
	}
	if !tn.Allow(now.Add(600 * time.Millisecond)) {
		t.Error("bucket did not refill after 600ms")
	}
	// Refill never exceeds burst.
	later := now.Add(time.Hour)
	tn.Allow(later)
	tn.Allow(later)
	if tn.Allow(later) {
		t.Error("bucket refilled past its burst capacity")
	}

	unlimited := newTenant(Spec{Name: "u"})
	for i := 0; i < 1000; i++ {
		if !unlimited.Allow(now) {
			t.Fatal("unlimited tenant was rate limited")
		}
	}
	if unlimited.RetryAfter(now) != 0 {
		t.Error("unlimited tenant has a nonzero RetryAfter")
	}
}

func TestQueueShareCap(t *testing.T) {
	cases := []struct {
		share float64
		depth int
		want  int
	}{
		{0, 64, 0}, // unset: uncapped
		{1, 64, 0}, // full share: uncapped
		{0.5, 64, 32},
		{0.25, 10, 3}, // ceil(2.5)
		{0.01, 10, 1}, // floor of 1 slot
	}
	for _, c := range cases {
		tn := newTenant(Spec{Name: "a", QueueShare: c.share})
		if got := tn.QueueShareCap(c.depth); got != c.want {
			t.Errorf("QueueShareCap(share=%v, depth=%d) = %d, want %d", c.share, c.depth, got, c.want)
		}
	}
}

func TestAccountingSnapshot(t *testing.T) {
	tn := newTenant(Spec{Name: "a", Weight: 3})
	tn.AddSimCPU(1500 * time.Millisecond)
	tn.AddCacheBytes(4096)
	tn.IncQueued()
	tn.IncInFlight()
	tn.CountSubmitted()
	tn.CountTerminal("done")
	tn.CountTerminal("failed")
	tn.CountTerminal("cancelled")
	tn.CountRejection("tenant_rate_limited")
	tn.CountRejection("tenant_rate_limited")
	sn := tn.Snapshot()
	if sn.Name != "a" || sn.Weight != 3 || sn.SimCPU != 1500*time.Millisecond ||
		sn.CacheBytes != 4096 || sn.Queued != 1 || sn.InFlight != 1 ||
		sn.Submitted != 1 || sn.Done != 1 || sn.Failed != 1 || sn.Cancelled != 1 ||
		sn.Rejected["tenant_rate_limited"] != 2 {
		t.Errorf("snapshot mismatch: %+v", sn)
	}
	// The snapshot's rejection map is a copy, not an alias.
	sn.Rejected["tenant_rate_limited"] = 99
	if tn.Snapshot().Rejected["tenant_rate_limited"] != 2 {
		t.Error("Snapshot aliases the live rejection map")
	}
}
