package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"hetwire"
	"hetwire/internal/wires"
)

// dec is a strict sequential payload reader. Errors are sticky, every read
// after a failure is a no-op, and finish() rejects trailing bytes — between
// them, a payload is accepted only if every byte was consumed by exactly
// the reads the canonical encoder would have written.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated payload at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// intv reads a non-negative int encoded as u64.
func (d *dec) intv() int {
	v := d.u64()
	if v > math.MaxInt64 {
		d.fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// presence reads a strictly-0-or-1 presence byte.
func (d *dec) presence() bool {
	switch v := d.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("non-canonical presence byte %d", v)
		return false
	}
}

// count reads a u32 element count and bounds it by the bytes remaining at
// min bytes per element, so a hostile count cannot drive a huge allocation.
func (d *dec) count(min int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(min) > int64(len(d.b)-d.off) {
		d.fail("element count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count(1)
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// blob reads a length-prefixed byte string, returning a fresh copy. A
// zero-length blob decodes to a non-nil empty slice: presence bytes encode
// the nil/non-nil distinction, so the blob itself must preserve it too for
// decode∘encode to be the identity.
func (d *dec) blob() []byte {
	n := d.count(1)
	p := d.take(n)
	if p == nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, p)
	return b
}

func (d *dec) strs() []string {
	if !d.presence() {
		return nil
	}
	n := d.count(4)
	ss := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ss = append(ss, d.str())
	}
	return ss
}

func (d *dec) ints() []int {
	if !d.presence() {
		return nil
	}
	n := d.count(8)
	vs := make([]int, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		vs = append(vs, d.intv())
	}
	return vs
}

// finish rejects payloads with unconsumed bytes and surfaces the sticky
// error.
func (d *dec) finish() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes after payload", len(d.b)-d.off)
	}
	return d.err
}

func decodeStats(d *dec) hetwire.Stats {
	var s hetwire.Stats
	s.Instructions = d.u64()
	s.Cycles = d.u64()
	s.Branches = d.u64()
	s.Mispredicts = d.u64()
	s.BTBMisses = d.u64()
	s.Loads = d.u64()
	s.Stores = d.u64()
	s.L1DMissRate = d.f64()
	s.L2MissRate = d.f64()
	s.TLBMissRate = d.f64()
	s.BranchAccuracy = d.f64()
	s.OperandTransfers = d.u64()
	s.LocalOperands = d.u64()
	s.NarrowTransfers = d.u64()
	s.NarrowMispredicted = d.u64()
	s.ReadyOperandPW = d.u64()
	s.StoreDataPW = d.u64()
	s.BalancePW = d.u64()
	s.NarrowEligible = d.u64()
	s.FVTransfers = d.u64()
	s.CriticalWordOnL = d.u64()
	s.PartialFalseDeps = d.u64()
	s.PartialChecks = d.u64()
	s.StoreForwards = d.u64()
	for i := range s.Net {
		cs := &s.Net[i]
		cs.Transfers = d.u64()
		cs.Bits = d.u64()
		cs.BitHops = d.u64()
		cs.WaitCycles = d.u64()
		cs.MaxWait = d.u64()
	}
	s.WaitCycles = d.u64()
	if d.presence() {
		n := d.count(9)
		s.LinkInventory = make(map[wires.Class]float64, n)
		prev := -1
		for i := 0; i < n && d.err == nil; i++ {
			k := d.u8()
			if int(k) <= prev {
				d.fail("link inventory keys not strictly increasing")
				break
			}
			prev = int(k)
			s.LinkInventory[wires.Class(k)] = d.f64()
		}
	}
	s.CalendarClamps = d.u64()
	s.SumDispatchStall = d.u64()
	s.SumSrcWait = d.u64()
	s.SumFUWait = d.u64()
	s.SumLoadLatency = d.u64()
	s.SumLSQWait = d.u64()
	s.SumStoreAddrLag = d.u64()
	s.MaxStoreAddrLag = d.u64()
	return s
}

func decodeRunResponse(d *dec) *hetwire.RunResponse {
	r := &hetwire.RunResponse{}
	r.Benchmark = d.str()
	r.Benchmarks = d.strs()
	r.Model = d.str()
	r.Clusters = d.intv()
	r.N = d.u64()
	r.IPC = d.f64()
	r.Instructions = d.u64()
	r.Cycles = d.u64()
	if d.presence() {
		st := decodeStats(d)
		r.Stats = &st
	}
	if d.presence() {
		n := d.count(4)
		r.Threads = make([]hetwire.ThreadSummary, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			var t hetwire.ThreadSummary
			t.Benchmark = d.str()
			t.Clusters = d.ints()
			t.IPC = d.f64()
			t.Stats = decodeStats(d)
			r.Threads = append(r.Threads, t)
		}
	}
	return r
}

func decodeRunRequest(d *dec) hetwire.RunRequest {
	var r hetwire.RunRequest
	r.Benchmark = d.str()
	r.Benchmarks = d.strs()
	r.N = d.u64()
	if d.presence() {
		r.Config = json.RawMessage(d.blob())
	}
	r.Model = d.str()
	r.Clusters = d.intv()
	return r
}

// decodeResultFrame is DecodeRunResult without the counter bump, shared by
// the public decoder and trust-boundary validation.
func decodeResultFrame(frame []byte) (*hetwire.RunResponse, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeRunResult {
		return nil, fmt.Errorf("wire: frame type %#02x is not a run result", h.Type)
	}
	if h.Flags != 0 || h.Index != 0 {
		return nil, fmt.Errorf("wire: run result frame has nonzero flags/index")
	}
	d := &dec{b: payload}
	r := decodeRunResponse(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	if h.Summary != math.Float64bits(r.IPC) {
		return nil, fmt.Errorf("wire: header summary %016x disagrees with payload IPC", h.Summary)
	}
	return r, nil
}

// DecodeRunResult decodes a TypeRunResult frame back into its RunResponse.
// Every call is counted in ResultDecodes — the zero-decode serving
// invariant is asserted against exactly this counter.
func DecodeRunResult(frame []byte) (*hetwire.RunResponse, error) {
	r, err := decodeResultFrame(frame)
	if err != nil {
		return nil, err
	}
	ResultDecodes.Add(1)
	return r, nil
}

// ValidateResultFrame fully validates a TypeRunResult frame — structure,
// CRC, canonical payload, header/payload agreement — without yielding the
// struct. It is the trust-boundary check for frames arriving from cluster
// nodes; it does not count as a serving-path decode.
func ValidateResultFrame(frame []byte) error {
	_, err := decodeResultFrame(frame)
	return err
}

// DecodeScenario decodes a TypeScenario frame. The embedded result frame
// is structurally validated and returned verbatim in Scenario.Result; its
// payload is not decoded (use Scenario.Response when the struct is needed).
func DecodeScenario(frame []byte) (*Scenario, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeScenario {
		return nil, fmt.Errorf("wire: frame type %#02x is not a scenario", h.Type)
	}
	if h.Flags&^(FlagError|FlagCached) != 0 {
		return nil, fmt.Errorf("wire: scenario frame has unknown flag bits %#04x", h.Flags)
	}
	d := &dec{b: payload}
	sc := &Scenario{}
	idx := d.u32()
	sc.Index = int(idx)
	sc.Request = decodeRunRequest(d)
	sc.Error = d.str()
	sc.Reason = d.str()
	if d.presence() {
		sc.Result = d.blob()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if idx != h.Index {
		return nil, fmt.Errorf("wire: scenario payload index %d disagrees with header %d", idx, h.Index)
	}
	if (sc.Result == nil) == (sc.Error == "") {
		return nil, fmt.Errorf("wire: scenario %d must carry exactly one of result and error", sc.Index)
	}
	if sc.Reason != "" && sc.Error == "" {
		return nil, fmt.Errorf("wire: scenario %d has a reason code without an error", sc.Index)
	}
	if (h.Flags&FlagError != 0) != (sc.Error != "") {
		return nil, fmt.Errorf("wire: scenario %d error flag disagrees with payload", sc.Index)
	}
	sc.Cached = h.Flags&FlagCached != 0
	if sc.Error != "" {
		if h.Summary != 0 {
			return nil, fmt.Errorf("wire: failed scenario %d has a nonzero summary word", sc.Index)
		}
		return sc, nil
	}
	rh, _, err := checkFrame(sc.Result)
	if err != nil {
		return nil, fmt.Errorf("wire: scenario %d embedded result: %w", sc.Index, err)
	}
	if rh.Type != TypeRunResult || rh.Flags != 0 || rh.Index != 0 {
		return nil, fmt.Errorf("wire: scenario %d embedded frame is not a plain run result", sc.Index)
	}
	if rh.Summary != h.Summary {
		return nil, fmt.Errorf("wire: scenario %d summary word disagrees with embedded result", sc.Index)
	}
	return sc, nil
}

// DecodeBatchHeader decodes a TypeBatchHeader frame into its scenario total.
func DecodeBatchHeader(frame []byte) (int, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return 0, err
	}
	if h.Type != TypeBatchHeader {
		return 0, fmt.Errorf("wire: frame type %#02x is not a batch header", h.Type)
	}
	if h.Flags != 0 || h.Index != 0 || h.Summary != 0 {
		return 0, fmt.Errorf("wire: batch header frame has nonzero flags/index/summary")
	}
	d := &dec{b: payload}
	total := d.u32()
	if err := d.finish(); err != nil {
		return 0, err
	}
	return int(total), nil
}

// DecodeBatchTrailer decodes a TypeBatchTrailer frame.
func DecodeBatchTrailer(frame []byte) (BatchTrailer, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return BatchTrailer{}, err
	}
	if h.Type != TypeBatchTrailer {
		return BatchTrailer{}, fmt.Errorf("wire: frame type %#02x is not a batch trailer", h.Type)
	}
	if h.Flags&^FlagIncomplete != 0 || h.Index != 0 || h.Summary != 0 {
		return BatchTrailer{}, fmt.Errorf("wire: batch trailer frame has unknown flags or nonzero index/summary")
	}
	d := &dec{b: payload}
	t := BatchTrailer{
		Total:     int(d.u32()),
		Completed: int(d.u32()),
		Failed:    int(d.u32()),
		CacheHits: int(d.u32()),
	}
	if err := d.finish(); err != nil {
		return BatchTrailer{}, err
	}
	if t.Completed+t.Failed > t.Total || t.CacheHits > t.Completed {
		return BatchTrailer{}, fmt.Errorf("wire: inconsistent batch trailer %+v", t)
	}
	if (h.Flags&FlagIncomplete != 0) != t.Incomplete() {
		return BatchTrailer{}, fmt.Errorf("wire: batch trailer incomplete flag disagrees with counts")
	}
	return t, nil
}

// DecodeBatch decodes a complete batch stream (header + scenarios +
// trailer) into a BatchResponse, fully decoding every embedded result —
// the bytes→struct direction for JSON views and client fallbacks.
func DecodeBatch(buf []byte) (*hetwire.BatchResponse, error) {
	frames, err := Split(buf)
	if err != nil {
		return nil, err
	}
	if len(frames) < 2 {
		return nil, fmt.Errorf("wire: batch stream has %d frames, need header and trailer", len(frames))
	}
	total, err := DecodeBatchHeader(frames[0])
	if err != nil {
		return nil, err
	}
	if len(frames) != total+2 {
		return nil, fmt.Errorf("wire: batch stream has %d frames for %d scenarios", len(frames), total)
	}
	resp := &hetwire.BatchResponse{Scenarios: make([]hetwire.BatchScenario, total)}
	for i := 0; i < total; i++ {
		sc, err := DecodeScenario(frames[i+1])
		if err != nil {
			return nil, fmt.Errorf("wire: batch scenario %d: %w", i, err)
		}
		if sc.Index != i {
			return nil, fmt.Errorf("wire: batch scenario at position %d has index %d", i, sc.Index)
		}
		bs := &resp.Scenarios[i]
		bs.Index = sc.Index
		bs.Request = sc.Request
		bs.Error = sc.Error
		bs.Reason = sc.Reason
		bs.Cached = sc.Cached
		if sc.Result != nil {
			bs.Response, err = DecodeRunResult(sc.Result)
			if err != nil {
				return nil, fmt.Errorf("wire: batch scenario %d result: %w", i, err)
			}
			resp.Completed++
			if sc.Cached {
				resp.CacheHits++
			}
		} else {
			resp.Failed++
		}
	}
	t, err := DecodeBatchTrailer(frames[total+1])
	if err != nil {
		return nil, err
	}
	if t.Total != total || t.Completed != resp.Completed || t.Failed != resp.Failed || t.CacheHits != resp.CacheHits {
		return nil, fmt.Errorf("wire: batch trailer %+v disagrees with scenario outcomes (%d/%d/%d of %d)",
			t, resp.Completed, resp.Failed, resp.CacheHits, total)
	}
	return resp, nil
}

// DecodeTraceRecord decodes a TypeTraceRecord frame into its sequence
// number and the wrapped JSONL line.
func DecodeTraceRecord(frame []byte) (uint32, []byte, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return 0, nil, err
	}
	if h.Type != TypeTraceRecord {
		return 0, nil, fmt.Errorf("wire: frame type %#02x is not a trace record", h.Type)
	}
	if h.Flags != 0 || h.Summary != 0 {
		return 0, nil, fmt.Errorf("wire: trace record frame has nonzero flags/summary")
	}
	return h.Index, append([]byte(nil), payload...), nil
}

// DecodeUploadHeader decodes a TypeUploadHeader frame.
func DecodeUploadHeader(frame []byte) (*UploadHeader, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeUploadHeader {
		return nil, fmt.Errorf("wire: frame type %#02x is not an upload header", h.Type)
	}
	if h.Flags != 0 || h.Index != 0 || h.Summary != 0 {
		return nil, fmt.Errorf("wire: upload header frame has nonzero flags/index/summary")
	}
	d := &dec{b: payload}
	uh := &UploadHeader{}
	uh.NodeID = d.str()
	uh.LeaseID = d.str()
	uh.JobID = d.str()
	if d.presence() {
		n := d.count(12)
		uh.Spans = make([]SpanMS, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			var sp SpanMS
			sp.Name = d.str()
			sp.DurMS = d.f64()
			uh.Spans = append(uh.Spans, sp)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return uh, nil
}

// DecodeUploadResult decodes a TypeUploadResult frame. Like DecodeScenario
// it validates the embedded result frame structurally without decoding its
// payload.
func DecodeUploadResult(frame []byte) (*UploadResult, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeUploadResult {
		return nil, fmt.Errorf("wire: frame type %#02x is not an upload result", h.Type)
	}
	if h.Flags&^(FlagError|FlagSkipped) != 0 {
		return nil, fmt.Errorf("wire: upload result frame has unknown flag bits %#04x", h.Flags)
	}
	d := &dec{b: payload}
	ur := &UploadResult{}
	idx := d.u32()
	ur.Index = int(idx)
	ur.CacheKey = d.str()
	ur.Error = d.str()
	ur.Reason = d.str()
	if d.presence() {
		ur.Frame = d.blob()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if idx != h.Index {
		return nil, fmt.Errorf("wire: upload result payload index %d disagrees with header %d", idx, h.Index)
	}
	ur.Skipped = h.Flags&FlagSkipped != 0
	set := 0
	if ur.Frame != nil {
		set++
	}
	if ur.Error != "" {
		set++
	}
	if ur.Skipped {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("wire: upload result %d must carry exactly one of frame, error, and skip marker", ur.Index)
	}
	if ur.Reason != "" && ur.Error == "" {
		return nil, fmt.Errorf("wire: upload result %d has a reason code without an error", ur.Index)
	}
	if (h.Flags&FlagError != 0) != (ur.Error != "") {
		return nil, fmt.Errorf("wire: upload result %d error flag disagrees with payload", ur.Index)
	}
	if ur.Frame == nil {
		if h.Summary != 0 {
			return nil, fmt.Errorf("wire: upload result %d has a nonzero summary word without a frame", ur.Index)
		}
		return ur, nil
	}
	rh, _, err := checkFrame(ur.Frame)
	if err != nil {
		return nil, fmt.Errorf("wire: upload result %d embedded frame: %w", ur.Index, err)
	}
	if rh.Type != TypeRunResult || rh.Flags != 0 || rh.Index != 0 {
		return nil, fmt.Errorf("wire: upload result %d embedded frame is not a plain run result", ur.Index)
	}
	if rh.Summary != h.Summary {
		return nil, fmt.Errorf("wire: upload result %d summary word disagrees with embedded frame", ur.Index)
	}
	return ur, nil
}
