// Package wire implements hetwire-bin/v1, the length-prefixed, versioned
// binary encoding for simulation results, batch scenario streams, cluster
// uploads, and hetwire-trace records.
//
// Every frame starts with a fixed 28-byte header (magic, version, type,
// flags, index, payload length, payload CRC-32, and an 8-byte summary word)
// so containers can be counted, split, and routed without decoding any
// payload: the batch streamer copies stored frames verbatim, the cache
// serves hits as a single buffer copy, and progress displays read IPC out
// of the summary word. JSON remains the debug/fallback view; the two
// encodings are views of the same structs, so a result round-tripped
// through either path hashes identically (see ResultHash).
//
// The encoding is canonical: there is exactly one accepted byte string for
// any value. Decoders validate everything — CRC, exact lengths, bool bytes,
// map ordering, flag bits, header/payload agreement — and reject the rest,
// which makes decode∘encode the identity and encode∘decode the identity on
// accepted frames (the fuzz targets pin both directions). Canonical bytes
// are what make content-addressed upload idempotency work across formats:
// the coordinator normalises every upload to its frame bytes before
// hashing, so a JSON straggler and a binary re-dispatch of the same
// scenario still collide on the same sum.
package wire

import (
	"bytes"
	"encoding/binary"
	"expvar"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Format names the encoding version; it is advertised during cluster
	// registration and bumped on any incompatible layout change.
	Format = "hetwire-bin/v1"
	// ContentType is the HTTP media type used to negotiate the binary
	// encoding (Accept on reads, Content-Type on writes).
	ContentType = "application/x-hetwire-bin"
	// Version is the header version byte for Format.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 28
	// MaxPayload bounds a single frame's payload; anything larger is a
	// protocol violation, not a workload (the upload body cap is 16 MiB).
	MaxPayload = 64 << 20
)

// Frame types. The type byte decides the payload layout and which flag bits
// and header fields are meaningful; decoders reject unknown types.
const (
	// TypeRunResult carries one encoded hetwire.RunResponse. The header
	// summary word holds the response IPC bits, so sweep progress and batch
	// assembly read IPC without touching the payload.
	TypeRunResult byte = 0x01
	// TypeBatchHeader opens a batch stream: payload is the expanded
	// scenario total.
	TypeBatchHeader byte = 0x02
	// TypeScenario is one batch scenario outcome at its expansion index:
	// the request, plus either an embedded TypeRunResult frame (copied
	// verbatim from the result cache) or an error.
	TypeScenario byte = 0x03
	// TypeBatchTrailer closes a batch stream with the completed/failed/
	// cache-hit counts.
	TypeBatchTrailer byte = 0x04
	// TypeTraceRecord wraps one canonical hetwire-trace/v1 JSONL line;
	// the header index is the record's sequence number.
	TypeTraceRecord byte = 0x05
	// TypeUploadHeader opens a cluster upload stream: node, lease, and job
	// identity plus the node-side span timings.
	TypeUploadHeader byte = 0x06
	// TypeUploadResult is one scenario outcome inside a cluster upload.
	TypeUploadResult byte = 0x07
	// TypeFlightRecord wraps one canonical hetwire-flight/v1 JSONL line
	// (a flight-recorder dump header or event); the header index is the
	// record's position in the dump stream.
	TypeFlightRecord byte = 0x08
)

// Flag bits, meaningful per frame type; all other bits must be zero.
const (
	// FlagError (TypeScenario, TypeUploadResult): the Error string is set
	// and no result frame is embedded.
	FlagError uint16 = 1 << 0
	// FlagCached (TypeScenario): the result was served from a result cache.
	FlagCached uint16 = 1 << 1
	// FlagSkipped (TypeUploadResult): federated-cache skip marker; the
	// coordinator fills the slot from its own cache.
	FlagSkipped uint16 = 1 << 2
	// FlagIncomplete (TypeBatchTrailer): the stream ended before every
	// scenario resolved (job cancelled or deadline-exceeded mid-batch).
	FlagIncomplete uint16 = 1 << 0
)

var magic = [4]byte{'H', 'W', 'B', '1'}

// ResultDecodes counts full RunResponse payload decodes performed by this
// process. The serving path is designed so a cache hit is a header peek
// plus one buffer copy — the zero-decode invariant — and this counter is
// how tests (and /debug/vars) assert it: serve N cache hits over the binary
// endpoint and the counter must not move.
var ResultDecodes = expvar.NewInt("hetwire_wire_result_decodes")

// Header is the decoded fixed frame header.
//
// Layout (little-endian):
//
//	[0:4)   magic "HWB1"
//	[4]     version (1)
//	[5]     type
//	[6:8)   flags
//	[8:12)  index (scenario expansion index / trace sequence number)
//	[12:16) payload length
//	[16:20) payload CRC-32 (IEEE)
//	[20:28) summary word (float64 bits; IPC for result-bearing frames)
type Header struct {
	Type    byte
	Flags   uint16
	Index   uint32
	Length  uint32
	CRC     uint32
	Summary uint64
}

// SummaryFloat returns the summary word as the float64 it encodes.
func (h Header) SummaryFloat() float64 { return math.Float64frombits(h.Summary) }

// ParseHeader decodes the frame header at the front of b. It validates
// magic, version, and the payload-length bound, but does not look at the
// payload (the caller may not have it yet).
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("wire: truncated header: %d bytes", len(b))
	}
	if !bytes.Equal(b[0:4], magic[:]) {
		return Header{}, fmt.Errorf("wire: bad magic %q", b[0:4])
	}
	if b[4] != Version {
		return Header{}, fmt.Errorf("wire: unsupported version %d (want %d)", b[4], Version)
	}
	h := Header{
		Type:    b[5],
		Flags:   binary.LittleEndian.Uint16(b[6:8]),
		Index:   binary.LittleEndian.Uint32(b[8:12]),
		Length:  binary.LittleEndian.Uint32(b[12:16]),
		CRC:     binary.LittleEndian.Uint32(b[16:20]),
		Summary: binary.LittleEndian.Uint64(b[20:28]),
	}
	if h.Length > MaxPayload {
		return Header{}, fmt.Errorf("wire: payload length %d exceeds limit %d", h.Length, MaxPayload)
	}
	return h, nil
}

// PeekHeader parses the header of the first frame in buf. It is the
// zero-decode fast path: ipcOf-style summary reads cost one header parse.
func PeekHeader(buf []byte) (Header, error) {
	return ParseHeader(buf)
}

// IsWire reports whether b starts with a hetwire-bin frame header. The
// magic is not valid JSON, so sniffing distinguishes the two encodings.
func IsWire(b []byte) bool {
	return len(b) >= 4 && bytes.Equal(b[0:4], magic[:])
}

// appendFrame appends one complete frame (header + payload) to dst.
func appendFrame(dst []byte, typ byte, flags uint16, index uint32, summary uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("wire: payload %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	var hb [HeaderSize]byte
	copy(hb[0:4], magic[:])
	hb[4] = Version
	hb[5] = typ
	binary.LittleEndian.PutUint16(hb[6:8], flags)
	binary.LittleEndian.PutUint32(hb[8:12], index)
	binary.LittleEndian.PutUint32(hb[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hb[16:20], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(hb[20:28], summary)
	dst = append(dst, hb[:]...)
	return append(dst, payload...), nil
}

// checkFrame validates one complete frame slice — header, exact length, and
// payload CRC — and returns the header and the payload subslice (no copy).
func checkFrame(frame []byte) (Header, []byte, error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return Header{}, nil, err
	}
	if len(frame) != HeaderSize+int(h.Length) {
		return Header{}, nil, fmt.Errorf("wire: frame is %d bytes, header declares %d",
			len(frame), HeaderSize+int(h.Length))
	}
	payload := frame[HeaderSize:]
	if crc := crc32.ChecksumIEEE(payload); crc != h.CRC {
		return Header{}, nil, fmt.Errorf("wire: payload CRC mismatch (got %08x, header %08x)", crc, h.CRC)
	}
	return h, payload, nil
}

// Count walks buf's frame headers and returns how many frames it holds.
// It reads 28 bytes per frame and never touches payloads — the routing
// primitive: a relay can count, and Split can shard, at memcpy speed.
func Count(buf []byte) (int, error) {
	n := 0
	for off := 0; off < len(buf); {
		h, err := ParseHeader(buf[off:])
		if err != nil {
			return n, err
		}
		end := off + HeaderSize + int(h.Length)
		if end > len(buf) {
			return n, fmt.Errorf("wire: frame %d truncated: needs %d bytes, %d remain", n, end-off, len(buf)-off)
		}
		off = end
		n++
	}
	return n, nil
}

// Split shards buf into per-frame subslices (zero-copy: the slices alias
// buf). Like Count it validates only headers, not payload CRCs.
func Split(buf []byte) ([][]byte, error) {
	var frames [][]byte
	for off := 0; off < len(buf); {
		h, err := ParseHeader(buf[off:])
		if err != nil {
			return nil, err
		}
		end := off + HeaderSize + int(h.Length)
		if end > len(buf) {
			return nil, fmt.Errorf("wire: frame %d truncated: needs %d bytes, %d remain", len(frames), end-off, len(buf)-off)
		}
		frames = append(frames, buf[off:end:end])
		off = end
	}
	return frames, nil
}

// Walk iterates buf's frames with payload CRCs verified, calling fn with
// each header and complete frame slice. fn returning an error stops the walk.
func Walk(buf []byte, fn func(h Header, frame []byte) error) error {
	frames, err := Split(buf)
	if err != nil {
		return err
	}
	for _, fr := range frames {
		h, _, err := checkFrame(fr)
		if err != nil {
			return err
		}
		if err := fn(h, fr); err != nil {
			return err
		}
	}
	return nil
}

// Reader reads frames from a stream, validating each completely (header +
// CRC). Next returns io.EOF at a clean frame boundary and an error for
// anything torn or corrupt.
type Reader struct {
	r   io.Reader
	hdr [HeaderSize]byte
}

// NewReader wraps r as a frame reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads and validates the next frame, returning its header and the
// complete frame bytes (header + payload, freshly allocated).
func (rd *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, nil, fmt.Errorf("wire: torn frame header at end of stream")
		}
		return Header{}, nil, err
	}
	h, err := ParseHeader(rd.hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	frame := make([]byte, HeaderSize+int(h.Length))
	copy(frame, rd.hdr[:])
	if _, err := io.ReadFull(rd.r, frame[HeaderSize:]); err != nil {
		return Header{}, nil, fmt.Errorf("wire: torn frame payload: %w", err)
	}
	if crc := crc32.ChecksumIEEE(frame[HeaderSize:]); crc != h.CRC {
		return Header{}, nil, fmt.Errorf("wire: payload CRC mismatch (got %08x, header %08x)", crc, h.CRC)
	}
	return h, frame, nil
}
