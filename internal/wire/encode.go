package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hetwire"
	"hetwire/internal/wires"
)

// enc is an append-only payload builder. Errors are sticky: the first
// non-canonical value (negative int, oversized index) poisons the build and
// surfaces when the frame is sealed.
type enc struct {
	b   []byte
	err error
}

func (e *enc) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// intv encodes a non-negative Go int as u64; the structs never hold
// negative values, so a negative here is a bug, not a value to represent.
func (e *enc) intv(v int) {
	if v < 0 {
		e.fail("cannot encode negative int %d", v)
		return
	}
	e.u64(uint64(v))
}

func (e *enc) str(s string) {
	if len(s) > MaxPayload {
		e.fail("string of %d bytes exceeds frame limit", len(s))
		return
	}
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) blob(b []byte) {
	if len(b) > MaxPayload {
		e.fail("blob of %d bytes exceeds frame limit", len(b))
		return
	}
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// strs encodes a []string with a presence byte: nil and non-nil-empty are
// distinct, mirroring encoding/json (null vs []) so the decoded struct
// JSON-marshals — and therefore ResultHash-es — identically to the original.
func (e *enc) strs(ss []string) {
	if ss == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *enc) ints(vs []int) {
	if vs == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.intv(v)
	}
}

// seal closes the payload and wraps it into a frame.
func (e *enc) seal(typ byte, flags uint16, index uint32, summary uint64, dst []byte) ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	return appendFrame(dst, typ, flags, index, summary, e.b)
}

// encodeStats writes every core.Stats field in struct order. The map is
// the only unordered field; it is written sorted by class byte (strictly
// increasing — duplicates are impossible in a map and rejected on decode),
// which is what makes the encoding canonical.
func encodeStats(e *enc, s *hetwire.Stats) {
	e.u64(s.Instructions)
	e.u64(s.Cycles)
	e.u64(s.Branches)
	e.u64(s.Mispredicts)
	e.u64(s.BTBMisses)
	e.u64(s.Loads)
	e.u64(s.Stores)
	e.f64(s.L1DMissRate)
	e.f64(s.L2MissRate)
	e.f64(s.TLBMissRate)
	e.f64(s.BranchAccuracy)
	e.u64(s.OperandTransfers)
	e.u64(s.LocalOperands)
	e.u64(s.NarrowTransfers)
	e.u64(s.NarrowMispredicted)
	e.u64(s.ReadyOperandPW)
	e.u64(s.StoreDataPW)
	e.u64(s.BalancePW)
	e.u64(s.NarrowEligible)
	e.u64(s.FVTransfers)
	e.u64(s.CriticalWordOnL)
	e.u64(s.PartialFalseDeps)
	e.u64(s.PartialChecks)
	e.u64(s.StoreForwards)
	for i := range s.Net {
		cs := &s.Net[i]
		e.u64(cs.Transfers)
		e.u64(cs.Bits)
		e.u64(cs.BitHops)
		e.u64(cs.WaitCycles)
		e.u64(cs.MaxWait)
	}
	e.u64(s.WaitCycles)
	if s.LinkInventory == nil {
		e.u8(0)
	} else {
		e.u8(1)
		keys := make([]wires.Class, 0, len(s.LinkInventory))
		for k := range s.LinkInventory {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		e.u32(uint32(len(keys)))
		for _, k := range keys {
			e.u8(byte(k))
			e.f64(s.LinkInventory[k])
		}
	}
	e.u64(s.CalendarClamps)
	e.u64(s.SumDispatchStall)
	e.u64(s.SumSrcWait)
	e.u64(s.SumFUWait)
	e.u64(s.SumLoadLatency)
	e.u64(s.SumLSQWait)
	e.u64(s.SumStoreAddrLag)
	e.u64(s.MaxStoreAddrLag)
}

func encodeRunResponse(e *enc, r *hetwire.RunResponse) {
	e.str(r.Benchmark)
	e.strs(r.Benchmarks)
	e.str(r.Model)
	e.intv(r.Clusters)
	e.u64(r.N)
	e.f64(r.IPC)
	e.u64(r.Instructions)
	e.u64(r.Cycles)
	if r.Stats == nil {
		e.u8(0)
	} else {
		e.u8(1)
		encodeStats(e, r.Stats)
	}
	if r.Threads == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.u32(uint32(len(r.Threads)))
		for i := range r.Threads {
			t := &r.Threads[i]
			e.str(t.Benchmark)
			e.ints(t.Clusters)
			e.f64(t.IPC)
			encodeStats(e, &t.Stats)
		}
	}
}

func encodeRunRequest(e *enc, r *hetwire.RunRequest) {
	e.str(r.Benchmark)
	e.strs(r.Benchmarks)
	e.u64(r.N)
	if r.Config == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.blob(r.Config)
	}
	e.str(r.Model)
	e.intv(r.Clusters)
}

// EncodeRunResult encodes one RunResponse as a TypeRunResult frame. The
// header summary word carries the IPC bits so downstream layers read it
// without decoding.
func EncodeRunResult(r *hetwire.RunResponse) ([]byte, error) {
	e := &enc{}
	encodeRunResponse(e, r)
	return e.seal(TypeRunResult, 0, 0, math.Float64bits(r.IPC), nil)
}

// Scenario is the decoded form of a TypeScenario frame: one batch scenario
// outcome at its expansion index. Result holds the embedded TypeRunResult
// frame verbatim — assembling a scenario frame from a cached result is a
// pure copy, and Response() decodes it only when a caller actually needs
// the struct.
type Scenario struct {
	Index   int
	Request hetwire.RunRequest
	// Result is the embedded TypeRunResult frame bytes; nil when Error is
	// set. Exactly one of Result and Error is present.
	Result []byte
	Error  string
	Reason string
	Cached bool
}

// Response decodes the embedded result frame (a full payload decode; the
// streaming/copy paths never call this).
func (sc *Scenario) Response() (*hetwire.RunResponse, error) {
	if sc.Result == nil {
		return nil, fmt.Errorf("wire: scenario %d has no result (error %q)", sc.Index, sc.Error)
	}
	return DecodeRunResult(sc.Result)
}

// AppendScenario appends sc as a TypeScenario frame. The embedded result
// frame is validated structurally (header + CRC) but its payload is not
// decoded — the zero-copy path from cache to stream.
func AppendScenario(dst []byte, sc *Scenario) ([]byte, error) {
	if sc.Index < 0 || sc.Index > math.MaxUint32 {
		return nil, fmt.Errorf("wire: scenario index %d out of range", sc.Index)
	}
	result := sc.Result
	if len(result) == 0 {
		result = nil
	}
	if (result == nil) == (sc.Error == "") {
		return nil, fmt.Errorf("wire: scenario %d must carry exactly one of result and error", sc.Index)
	}
	if sc.Reason != "" && sc.Error == "" {
		return nil, fmt.Errorf("wire: scenario %d has a reason code without an error", sc.Index)
	}
	var flags uint16
	var summary uint64
	if sc.Error != "" {
		flags |= FlagError
	} else {
		rh, _, err := checkFrame(result)
		if err != nil {
			return nil, fmt.Errorf("wire: scenario %d embedded result: %w", sc.Index, err)
		}
		if rh.Type != TypeRunResult || rh.Flags != 0 || rh.Index != 0 {
			return nil, fmt.Errorf("wire: scenario %d embedded frame is not a plain run result", sc.Index)
		}
		summary = rh.Summary
	}
	if sc.Cached {
		flags |= FlagCached
	}
	e := &enc{}
	e.u32(uint32(sc.Index))
	encodeRunRequest(e, &sc.Request)
	e.str(sc.Error)
	e.str(sc.Reason)
	if result == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.blob(result)
	}
	return e.seal(TypeScenario, flags, uint32(sc.Index), summary, dst)
}

// AppendBatchHeader opens a batch stream: total is the expanded scenario
// count the stream will carry.
func AppendBatchHeader(dst []byte, total int) ([]byte, error) {
	if total < 0 || total > math.MaxUint32 {
		return nil, fmt.Errorf("wire: batch total %d out of range", total)
	}
	e := &enc{}
	e.u32(uint32(total))
	return e.seal(TypeBatchHeader, 0, 0, 0, dst)
}

// BatchTrailer closes a batch stream with its outcome counts.
type BatchTrailer struct {
	Total     int
	Completed int
	Failed    int
	CacheHits int
}

// Incomplete reports that the stream ended before every scenario resolved.
func (t BatchTrailer) Incomplete() bool { return t.Completed+t.Failed < t.Total }

// AppendBatchTrailer appends the stream-closing trailer. The incomplete
// flag is derived from the counts, never set independently.
func AppendBatchTrailer(dst []byte, t BatchTrailer) ([]byte, error) {
	if t.Total < 0 || t.Completed < 0 || t.Failed < 0 || t.CacheHits < 0 ||
		t.Total > math.MaxUint32 || t.Completed+t.Failed > t.Total || t.CacheHits > t.Completed {
		return nil, fmt.Errorf("wire: inconsistent batch trailer %+v", t)
	}
	var flags uint16
	if t.Incomplete() {
		flags |= FlagIncomplete
	}
	e := &enc{}
	e.u32(uint32(t.Total))
	e.u32(uint32(t.Completed))
	e.u32(uint32(t.Failed))
	e.u32(uint32(t.CacheHits))
	return e.seal(TypeBatchTrailer, flags, 0, 0, dst)
}

// EncodeBatch encodes a complete BatchResponse as a batch stream (header,
// scenarios in index order, trailer). This is the struct→bytes direction
// used by conversion paths; the daemon's streaming path assembles the same
// bytes from stored frames without ever building the struct.
func EncodeBatch(resp *hetwire.BatchResponse) ([]byte, error) {
	buf, err := AppendBatchHeader(nil, len(resp.Scenarios))
	if err != nil {
		return nil, err
	}
	for i := range resp.Scenarios {
		bs := &resp.Scenarios[i]
		if bs.Index != i {
			return nil, fmt.Errorf("wire: batch scenario at position %d has index %d", i, bs.Index)
		}
		sc := Scenario{
			Index:   bs.Index,
			Request: bs.Request,
			Error:   bs.Error,
			Reason:  bs.Reason,
			Cached:  bs.Cached,
		}
		if bs.Response != nil {
			sc.Result, err = EncodeRunResult(bs.Response)
			if err != nil {
				return nil, err
			}
		}
		buf, err = AppendScenario(buf, &sc)
		if err != nil {
			return nil, err
		}
	}
	return AppendBatchTrailer(buf, BatchTrailer{
		Total:     len(resp.Scenarios),
		Completed: resp.Completed,
		Failed:    resp.Failed,
		CacheHits: resp.CacheHits,
	})
}

// AppendTraceRecord wraps one canonical hetwire-trace/v1 JSONL line (no
// trailing newline) as a TypeTraceRecord frame with sequence number index.
func AppendTraceRecord(dst []byte, index uint32, line []byte) ([]byte, error) {
	e := &enc{}
	e.b = append(e.b, line...)
	return e.seal(TypeTraceRecord, 0, index, 0, dst)
}

// SpanMS is a named duration inside an upload header, mirroring
// cluster.Span without importing it (cluster imports wire, not vice versa).
type SpanMS struct {
	Name  string
	DurMS float64
}

// UploadHeader opens a cluster upload stream with the uploader's identity.
type UploadHeader struct {
	NodeID  string
	LeaseID string
	JobID   string
	Spans   []SpanMS
}

// AppendUploadHeader appends h as a TypeUploadHeader frame.
func AppendUploadHeader(dst []byte, h *UploadHeader) ([]byte, error) {
	e := &enc{}
	e.str(h.NodeID)
	e.str(h.LeaseID)
	e.str(h.JobID)
	if h.Spans == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.u32(uint32(len(h.Spans)))
		for _, sp := range h.Spans {
			e.str(sp.Name)
			e.f64(sp.DurMS)
		}
	}
	return e.seal(TypeUploadHeader, 0, 0, 0, dst)
}

// UploadResult is one scenario outcome inside a binary cluster upload,
// mirroring cluster.ScenarioResult with the body already in frame form.
// Exactly one of Frame, Error, and Skipped is set.
type UploadResult struct {
	Index    int
	CacheKey string
	// Frame is the embedded TypeRunResult frame for a completed scenario.
	Frame   []byte
	Error   string
	Reason  string
	Skipped bool
}

// AppendUploadResult appends r as a TypeUploadResult frame.
func AppendUploadResult(dst []byte, r *UploadResult) ([]byte, error) {
	if r.Index < 0 || r.Index > math.MaxUint32 {
		return nil, fmt.Errorf("wire: upload result index %d out of range", r.Index)
	}
	frame := r.Frame
	if len(frame) == 0 {
		frame = nil
	}
	set := 0
	if frame != nil {
		set++
	}
	if r.Error != "" {
		set++
	}
	if r.Skipped {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("wire: upload result %d must carry exactly one of frame, error, and skip marker", r.Index)
	}
	if r.Reason != "" && r.Error == "" {
		return nil, fmt.Errorf("wire: upload result %d has a reason code without an error", r.Index)
	}
	var flags uint16
	var summary uint64
	switch {
	case r.Error != "":
		flags |= FlagError
	case r.Skipped:
		flags |= FlagSkipped
	default:
		rh, _, err := checkFrame(frame)
		if err != nil {
			return nil, fmt.Errorf("wire: upload result %d embedded frame: %w", r.Index, err)
		}
		if rh.Type != TypeRunResult || rh.Flags != 0 || rh.Index != 0 {
			return nil, fmt.Errorf("wire: upload result %d embedded frame is not a plain run result", r.Index)
		}
		summary = rh.Summary
	}
	e := &enc{}
	e.u32(uint32(r.Index))
	e.str(r.CacheKey)
	e.str(r.Error)
	e.str(r.Reason)
	if frame == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.blob(frame)
	}
	return e.seal(TypeUploadResult, flags, uint32(r.Index), summary, dst)
}
