package wire

import (
	"bytes"
	"fmt"
	"io"
)

// AppendFlightRecord wraps one canonical hetwire-flight/v1 JSONL line (no
// trailing newline) as a TypeFlightRecord frame with stream position index.
// The framing mirrors AppendTraceRecord: the line bytes pass through
// unchanged, so a dump round-tripped through the binary container is
// byte-identical to the JSONL dump and the `cmp` determinism check holds in
// both formats.
func AppendFlightRecord(dst []byte, index uint32, line []byte) ([]byte, error) {
	e := &enc{}
	e.b = append(e.b, line...)
	return e.seal(TypeFlightRecord, 0, index, 0, dst)
}

// DecodeFlightRecord decodes a TypeFlightRecord frame into its stream
// position and the wrapped JSONL line.
func DecodeFlightRecord(frame []byte) (uint32, []byte, error) {
	h, payload, err := checkFrame(frame)
	if err != nil {
		return 0, nil, err
	}
	if h.Type != TypeFlightRecord {
		return 0, nil, fmt.Errorf("wire: frame type %#02x is not a flight record", h.Type)
	}
	if h.Flags != 0 || h.Summary != 0 {
		return 0, nil, fmt.Errorf("wire: flight record frame has nonzero flags/summary")
	}
	return h.Index, append([]byte(nil), payload...), nil
}

// FlightWriter wraps a hetwire-flight/v1 JSONL dump into TypeFlightRecord
// frames, one per line, numbered 0,1,2,… — the binary container behind
// GET /v1/debug/flight content negotiation.
type FlightWriter struct {
	w   io.Writer
	buf []byte
	seq uint32
	err error
}

// NewFlightWriter returns a writer that frames JSONL lines written to it
// into w. Close flushes any final unterminated line.
func NewFlightWriter(w io.Writer) *FlightWriter { return &FlightWriter{w: w} }

// Write buffers p and emits one frame per completed line.
func (fw *FlightWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	fw.buf = append(fw.buf, p...)
	for {
		nl := bytes.IndexByte(fw.buf, '\n')
		if nl < 0 {
			return len(p), nil
		}
		if err := fw.emit(fw.buf[:nl]); err != nil {
			return 0, err
		}
		fw.buf = fw.buf[nl+1:]
	}
}

func (fw *FlightWriter) emit(line []byte) error {
	frame, err := AppendFlightRecord(nil, fw.seq, line)
	if err == nil {
		_, err = fw.w.Write(frame)
	}
	if err != nil {
		fw.err = err
		return err
	}
	fw.seq++
	return nil
}

// Close flushes a trailing unterminated line, if any. It does not close
// the underlying writer.
func (fw *FlightWriter) Close() error {
	if fw.err != nil {
		return fw.err
	}
	if len(fw.buf) > 0 {
		if err := fw.emit(fw.buf); err != nil {
			return err
		}
		fw.buf = nil
	}
	return nil
}

// flightReader converts a TypeFlightRecord frame stream back into the JSONL
// dump it wrapped, validating frame integrity and gap-free numbering.
type flightReader struct {
	r       *Reader
	pending []byte
	next    uint32
	err     error
	eof     bool
}

// NewFlightReader returns an io.Reader yielding the JSONL dump wrapped in a
// binary flight container.
func NewFlightReader(r io.Reader) io.Reader { return &flightReader{r: NewReader(r)} }

func (fr *flightReader) Read(p []byte) (int, error) {
	for len(fr.pending) == 0 {
		if fr.err != nil {
			return 0, fr.err
		}
		if fr.eof {
			return 0, io.EOF
		}
		h, frame, err := fr.r.Next()
		if err == io.EOF {
			fr.eof = true
			return 0, io.EOF
		}
		if err != nil {
			fr.err = err
			return 0, err
		}
		if h.Type != TypeFlightRecord {
			fr.err = fmt.Errorf("wire: frame type %#02x inside a flight container", h.Type)
			return 0, fr.err
		}
		seq, line, err := DecodeFlightRecord(frame)
		if err != nil {
			fr.err = err
			return 0, err
		}
		if seq != fr.next {
			fr.err = fmt.Errorf("wire: flight record %d arrived where %d was expected", seq, fr.next)
			return 0, fr.err
		}
		fr.next++
		fr.pending = append(line, '\n')
	}
	n := copy(p, fr.pending)
	fr.pending = fr.pending[n:]
	return n, nil
}
