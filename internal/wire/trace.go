package wire

import (
	"bytes"
	"fmt"
	"io"
)

// TraceWriter wraps a hetwire-trace/v1 JSONL stream into TypeTraceRecord
// frames: each line becomes one frame carrying the line bytes (without the
// newline) and its sequence number. The JSONL lines stay canonical — the
// binary container is a framing around the exact bytes the JSON recorder
// produces — so a trace round-tripped through the container is
// byte-identical, and trace determinism (`cmp` in CI) holds in both
// formats.
type TraceWriter struct {
	w   io.Writer
	buf []byte
	seq uint32
	err error
}

// NewTraceWriter returns a writer that frames JSONL lines written to it
// into w. Close flushes any final unterminated line.
func NewTraceWriter(w io.Writer) *TraceWriter { return &TraceWriter{w: w} }

// Write buffers p and emits one frame per completed line.
func (tw *TraceWriter) Write(p []byte) (int, error) {
	if tw.err != nil {
		return 0, tw.err
	}
	tw.buf = append(tw.buf, p...)
	for {
		nl := bytes.IndexByte(tw.buf, '\n')
		if nl < 0 {
			return len(p), nil
		}
		if err := tw.emit(tw.buf[:nl]); err != nil {
			return 0, err
		}
		tw.buf = tw.buf[nl+1:]
	}
}

func (tw *TraceWriter) emit(line []byte) error {
	frame, err := AppendTraceRecord(nil, tw.seq, line)
	if err == nil {
		_, err = tw.w.Write(frame)
	}
	if err != nil {
		tw.err = err
		return err
	}
	tw.seq++
	return nil
}

// Close flushes a trailing unterminated line, if any. It does not close
// the underlying writer.
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if len(tw.buf) > 0 {
		if err := tw.emit(tw.buf); err != nil {
			return err
		}
		tw.buf = nil
	}
	return nil
}

// traceReader converts a TypeTraceRecord frame stream back into the JSONL
// byte stream it wrapped, validating frame integrity and that sequence
// numbers run 0,1,2,… without gaps.
type traceReader struct {
	r       *Reader
	pending []byte
	next    uint32
	err     error
	eof     bool
}

// NewTraceReader returns an io.Reader yielding the JSONL stream wrapped in
// a binary trace container.
func NewTraceReader(r io.Reader) io.Reader { return &traceReader{r: NewReader(r)} }

func (tr *traceReader) Read(p []byte) (int, error) {
	for len(tr.pending) == 0 {
		if tr.err != nil {
			return 0, tr.err
		}
		if tr.eof {
			return 0, io.EOF
		}
		h, frame, err := tr.r.Next()
		if err == io.EOF {
			tr.eof = true
			return 0, io.EOF
		}
		if err != nil {
			tr.err = err
			return 0, err
		}
		if h.Type != TypeTraceRecord {
			tr.err = fmt.Errorf("wire: frame type %#02x inside a trace container", h.Type)
			return 0, tr.err
		}
		seq, line, err := DecodeTraceRecord(frame)
		if err != nil {
			tr.err = err
			return 0, err
		}
		if seq != tr.next {
			tr.err = fmt.Errorf("wire: trace record %d arrived where %d was expected", seq, tr.next)
			return 0, tr.err
		}
		tr.next++
		tr.pending = append(line, '\n')
	}
	n := copy(p, tr.pending)
	tr.pending = tr.pending[n:]
	return n, nil
}
