package wire

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hetwire"
)

// fuzzSeeds builds the seed corpus shared by both fuzz targets: valid
// frames of every type, a complete batch stream, a trace container, and a
// few deliberately-broken variants so the fuzzer starts on both sides of
// every validation.
func fuzzSeeds(t testing.TB) [][]byte {
	must := func(b []byte, err error) []byte {
		if err != nil {
			t.Fatalf("building fuzz seed: %v", err)
		}
		return b
	}
	result := must(EncodeRunResult(sampleResponse()))
	multi := must(EncodeRunResult(sampleMultiResponse()))
	empty := must(EncodeRunResult(&hetwire.RunResponse{}))
	scenario := must(AppendScenario(nil, &Scenario{
		Index:   2,
		Request: hetwire.RunRequest{Benchmark: "gcc", N: 16000, Model: "VIII"},
		Result:  result,
		Cached:  true,
	}))
	failed := must(AppendScenario(nil, &Scenario{
		Index:   0,
		Request: hetwire.RunRequest{Benchmark: "mcf"},
		Error:   "deadline exceeded",
		Reason:  "cancelled",
	}))
	batch := must(EncodeBatch(&hetwire.BatchResponse{
		Scenarios: []hetwire.BatchScenario{
			{Index: 0, Request: hetwire.RunRequest{Benchmark: "gcc"}, Response: sampleResponse(), Cached: true},
			{Index: 1, Request: hetwire.RunRequest{Benchmark: "mcf"}, Error: "boom", Reason: "internal"},
		},
		Completed: 1,
		Failed:    1,
		CacheHits: 1,
	}))
	var traceBuf bytes.Buffer
	tw := NewTraceWriter(&traceBuf)
	fmt.Fprintf(tw, "{\"schema\":\"hetwire-trace/v1\"}\n{\"cycle\":1}\n")
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	uploadHdr := must(AppendUploadHeader(nil, &UploadHeader{
		NodeID: "n1", LeaseID: "l1", JobID: "j1",
		Spans: []SpanMS{{Name: "node_sim", DurMS: 3.5}},
	}))
	uploadRes := must(AppendUploadResult(nil, &UploadResult{Index: 4, CacheKey: "k", Frame: result}))
	uploadSkip := must(AppendUploadResult(nil, &UploadResult{Index: 5, CacheKey: "k2", Skipped: true}))
	bhdr := must(AppendBatchHeader(nil, 3))
	btrl := must(AppendBatchTrailer(nil, BatchTrailer{Total: 3, Completed: 2, Failed: 0, CacheHits: 1}))

	torn := append([]byte(nil), result[:len(result)-5]...)
	corrupt := append([]byte(nil), result...)
	corrupt[HeaderSize+3] ^= 0xff
	badMagic := append([]byte(nil), result...)
	badMagic[0] = 'X'

	return [][]byte{
		result, multi, empty, scenario, failed, batch,
		traceBuf.Bytes(), uploadHdr, uploadRes, uploadSkip, bhdr, btrl,
		torn, corrupt, badMagic,
		nil, []byte("HWB1"), []byte(`{"ipc":1}`),
	}
}

// FuzzWireDecode drives every decoder over arbitrary bytes. The contract
// under test: no decoder panics, and any input a decoder accepts re-encodes
// to exactly the bytes that were decoded — the canonical-encoding property
// that upload idempotency and the golden-wire fixtures rest on.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRunResult(data); err == nil {
			again, err := EncodeRunResult(r)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted run result does not re-encode identically (%v)", err)
			}
		}
		if sc, err := DecodeScenario(data); err == nil {
			again, err := AppendScenario(nil, sc)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted scenario does not re-encode identically (%v)", err)
			}
		}
		if total, err := DecodeBatchHeader(data); err == nil {
			again, err := AppendBatchHeader(nil, total)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted batch header does not re-encode identically (%v)", err)
			}
		}
		if tr, err := DecodeBatchTrailer(data); err == nil {
			again, err := AppendBatchTrailer(nil, tr)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted batch trailer does not re-encode identically (%v)", err)
			}
		}
		if seq, line, err := DecodeTraceRecord(data); err == nil {
			again, err := AppendTraceRecord(nil, seq, line)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted trace record does not re-encode identically (%v)", err)
			}
		}
		if seq, line, err := DecodeFlightRecord(data); err == nil {
			again, err := AppendFlightRecord(nil, seq, line)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted flight record does not re-encode identically (%v)", err)
			}
		}
		if uh, err := DecodeUploadHeader(data); err == nil {
			again, err := AppendUploadHeader(nil, uh)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted upload header does not re-encode identically (%v)", err)
			}
		}
		if ur, err := DecodeUploadResult(data); err == nil {
			again, err := AppendUploadResult(nil, ur)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted upload result does not re-encode identically (%v)", err)
			}
		}
		if resp, err := DecodeBatch(data); err == nil {
			again, err := EncodeBatch(resp)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("accepted batch stream does not re-encode identically (%v)", err)
			}
		}
	})
}

// FuzzWireFrameSplit pins the agreement between the three frame walkers:
// Count, Split, and the streaming Reader see the same frame boundaries on
// the same input, and a buffer the full batch decoder accepts counts to
// exactly its frame total. Routing decisions made from headers alone can
// therefore never disagree with a consumer that decodes everything.
func FuzzWireFrameSplit(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, errC := Count(data)
		frames, errS := Split(data)
		if (errC == nil) != (errS == nil) {
			t.Fatalf("Count err=%v but Split err=%v", errC, errS)
		}
		if errC != nil {
			// A buffer the header walk rejects must also fail the reader
			// (it validates strictly more) and the full decoder.
			if readsCleanly(data) {
				t.Fatal("Reader accepted a buffer Count rejected")
			}
			if _, err := DecodeBatch(data); err == nil {
				t.Fatal("DecodeBatch accepted a buffer Count rejected")
			}
			return
		}
		if n != len(frames) {
			t.Fatalf("Count = %d but Split yielded %d frames", n, len(frames))
		}
		total := 0
		for _, fr := range frames {
			total += len(fr)
		}
		if total != len(data) {
			t.Fatalf("frames cover %d of %d bytes", total, len(data))
		}
		// The reader validates CRCs on top of the header walk: it either
		// fails, or agrees byte-for-byte with Split.
		rd := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			_, fr, err := rd.Next()
			if err == io.EOF {
				if i != n {
					t.Fatalf("Reader yielded %d frames, Count said %d", i, n)
				}
				break
			}
			if err != nil {
				break
			}
			if i >= n || !bytes.Equal(fr, frames[i]) {
				t.Fatalf("Reader frame %d disagrees with Split", i)
			}
		}
		if resp, err := DecodeBatch(data); err == nil {
			if n != len(resp.Scenarios)+2 {
				t.Fatalf("batch of %d scenarios counted %d frames", len(resp.Scenarios), n)
			}
		}
	})
}

// readsCleanly reports whether a frame Reader consumes data to a clean EOF.
func readsCleanly(data []byte) bool {
	rd := NewReader(bytes.NewReader(data))
	for {
		_, _, err := rd.Next()
		if err == io.EOF {
			return true
		}
		if err != nil {
			return false
		}
	}
}

var updateWireSeeds = flag.Bool("update-wire-seeds", false,
	"rewrite the committed testdata/fuzz seed corpus for the wire fuzz targets")

// TestUpdateFuzzSeeds materialises fuzzSeeds into the committed corpus
// (testdata/fuzz/<Target>/) in the `go test fuzz v1` format, so CI fuzzing
// starts from real frames without re-running this writer.
func TestUpdateFuzzSeeds(t *testing.T) {
	if !*updateWireSeeds {
		t.Skip("pass -update-wire-seeds to rewrite the seed corpus")
	}
	for _, target := range []string{"FuzzWireDecode", "FuzzWireFrameSplit"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds(t) {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
