package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"hetwire"
	"hetwire/internal/wires"
)

// sampleStats fills every Stats field with a distinct value so a codec that
// drops, reorders, or aliases any field fails DeepEqual.
func sampleStats(seed uint64) hetwire.Stats {
	var s hetwire.Stats
	v := seed
	next := func() uint64 { v += 1000003; return v }
	s.Instructions = next()
	s.Cycles = next()
	s.Branches = next()
	s.Mispredicts = next()
	s.BTBMisses = next()
	s.Loads = next()
	s.Stores = next()
	s.L1DMissRate = float64(next()%97) / 97
	s.L2MissRate = float64(next()%89) / 89
	s.TLBMissRate = float64(next()%83) / 83
	s.BranchAccuracy = float64(next()%79) / 79
	s.OperandTransfers = next()
	s.LocalOperands = next()
	s.NarrowTransfers = next()
	s.NarrowMispredicted = next()
	s.ReadyOperandPW = next()
	s.StoreDataPW = next()
	s.BalancePW = next()
	s.NarrowEligible = next()
	s.FVTransfers = next()
	s.CriticalWordOnL = next()
	s.PartialFalseDeps = next()
	s.PartialChecks = next()
	s.StoreForwards = next()
	for i := range s.Net {
		s.Net[i].Transfers = next()
		s.Net[i].Bits = next()
		s.Net[i].BitHops = next()
		s.Net[i].WaitCycles = next()
		s.Net[i].MaxWait = next()
	}
	s.WaitCycles = next()
	s.LinkInventory = map[wires.Class]float64{
		wires.W:  float64(next() % 512),
		wires.PW: float64(next() % 512),
		wires.B:  float64(next() % 512),
		wires.L:  float64(next() % 512),
	}
	s.CalendarClamps = next()
	s.SumDispatchStall = next()
	s.SumSrcWait = next()
	s.SumFUWait = next()
	s.SumLoadLatency = next()
	s.SumLSQWait = next()
	s.SumStoreAddrLag = next()
	s.MaxStoreAddrLag = next()
	return s
}

func sampleResponse() *hetwire.RunResponse {
	st := sampleStats(7)
	return &hetwire.RunResponse{
		Benchmark:    "gcc",
		Model:        "VIII",
		Clusters:     4,
		N:            16000,
		IPC:          1.23456789,
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		Stats:        &st,
	}
}

func sampleMultiResponse() *hetwire.RunResponse {
	t0, t1 := sampleStats(11), sampleStats(13)
	return &hetwire.RunResponse{
		Benchmarks:   []string{"gzip", "mcf"},
		Model:        "V",
		Clusters:     16,
		N:            4000,
		IPC:          0.75,
		Instructions: 8000,
		Cycles:       9000,
		Threads: []hetwire.ThreadSummary{
			{Benchmark: "gzip", Clusters: []int{0, 1}, IPC: 0.5, Stats: t0},
			{Benchmark: "mcf", Clusters: []int{2, 3}, IPC: 1.0, Stats: t1},
		},
	}
}

func TestRunResultRoundTrip(t *testing.T) {
	for name, resp := range map[string]*hetwire.RunResponse{
		"single": sampleResponse(),
		"multi":  sampleMultiResponse(),
		"empty":  {},
		"nil-map": func() *hetwire.RunResponse {
			r := sampleResponse()
			r.Stats.LinkInventory = nil
			return r
		}(),
		"empty-map": func() *hetwire.RunResponse {
			r := sampleResponse()
			r.Stats.LinkInventory = map[wires.Class]float64{}
			return r
		}(),
	} {
		frame, err := EncodeRunResult(resp)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeRunResult(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, resp)
		}
		again, err := EncodeRunResult(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(again, frame) {
			t.Fatalf("%s: re-encode is not byte-identical", name)
		}
		// The JSON views must also agree — this is what keeps ResultHash
		// parity between the two encodings.
		ja, _ := json.Marshal(resp)
		jb, _ := json.Marshal(got)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: JSON views differ:\n%s\n%s", name, ja, jb)
		}
	}
}

func TestHeaderSummaryIsIPC(t *testing.T) {
	resp := sampleResponse()
	frame, err := EncodeRunResult(resp)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PeekHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeRunResult {
		t.Fatalf("type = %#02x", h.Type)
	}
	if got := h.SummaryFloat(); got != resp.IPC {
		t.Fatalf("summary IPC = %v, want %v", got, resp.IPC)
	}
	if !IsWire(frame) {
		t.Fatal("IsWire(frame) = false")
	}
	if IsWire([]byte(`{"ipc":1}`)) {
		t.Fatal("IsWire(json) = true")
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	result, err := EncodeRunResult(sampleResponse())
	if err != nil {
		t.Fatal(err)
	}
	cases := []*Scenario{
		{Index: 0, Request: hetwire.RunRequest{Benchmark: "gcc", N: 16000, Model: "VIII"}, Result: result, Cached: true},
		{Index: 3, Request: hetwire.RunRequest{Benchmarks: []string{"gzip", "mcf"}, Clusters: 16}, Result: result},
		{Index: 7, Request: hetwire.RunRequest{Benchmark: "swim", Config: json.RawMessage(`{"model":"I"}`)},
			Error: "boom", Reason: "internal"},
	}
	for i, sc := range cases {
		frame, err := AppendScenario(nil, sc)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeScenario(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, sc) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, sc)
		}
		again, err := AppendScenario(nil, got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(again, frame) {
			t.Fatalf("case %d: re-encode is not byte-identical", i)
		}
		h, err := PeekHeader(frame)
		if err != nil {
			t.Fatalf("case %d: peek: %v", i, err)
		}
		if int(h.Index) != sc.Index {
			t.Fatalf("case %d: header index %d", i, h.Index)
		}
		if sc.Error == "" {
			if h.SummaryFloat() != sampleResponse().IPC {
				t.Fatalf("case %d: summary = %v", i, h.SummaryFloat())
			}
			resp, err := got.Response()
			if err != nil {
				t.Fatalf("case %d: response: %v", i, err)
			}
			if !reflect.DeepEqual(resp, sampleResponse()) {
				t.Fatalf("case %d: embedded response mismatch", i)
			}
		}
	}
	if _, err := AppendScenario(nil, &Scenario{Index: 1}); err == nil {
		t.Fatal("scenario with neither result nor error must not encode")
	}
	if _, err := AppendScenario(nil, &Scenario{Index: 1, Result: result, Error: "x"}); err == nil {
		t.Fatal("scenario with both result and error must not encode")
	}
}

func TestBatchStreamRoundTrip(t *testing.T) {
	resp := &hetwire.BatchResponse{
		Scenarios: []hetwire.BatchScenario{
			{Index: 0, Request: hetwire.RunRequest{Benchmark: "gcc"}, Response: sampleResponse(), Cached: true},
			{Index: 1, Request: hetwire.RunRequest{Benchmark: "mcf"}, Error: "deadline exceeded", Reason: "cancelled"},
			{Index: 2, Request: hetwire.RunRequest{Benchmarks: []string{"gzip", "mesa"}}, Response: sampleMultiResponse()},
		},
		Completed: 2,
		Failed:    1,
		CacheHits: 1,
	}
	buf, err := EncodeBatch(resp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(buf)
	if err != nil || n != 5 {
		t.Fatalf("Count = %d, %v; want 5 frames", n, err)
	}
	frames, err := Split(buf)
	if err != nil || len(frames) != 5 {
		t.Fatalf("Split = %d frames, %v", len(frames), err)
	}
	total := 0
	for _, fr := range frames {
		total += len(fr)
	}
	if total != len(buf) {
		t.Fatalf("split frames cover %d of %d bytes", total, len(buf))
	}
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("batch round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}
	again, err := EncodeBatch(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, buf) {
		t.Fatal("batch re-encode is not byte-identical")
	}
}

func TestReaderMatchesSplit(t *testing.T) {
	buf, err := EncodeBatch(&hetwire.BatchResponse{
		Scenarios: []hetwire.BatchScenario{
			{Index: 0, Request: hetwire.RunRequest{Benchmark: "gcc"}, Response: sampleResponse()},
		},
		Completed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := Split(buf)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(buf))
	for i := 0; ; i++ {
		_, fr, err := rd.Next()
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("reader yielded %d frames, split %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fr, frames[i]) {
			t.Fatalf("reader frame %d differs from split", i)
		}
	}
	// A torn stream is an error, not EOF.
	rd = NewReader(bytes.NewReader(buf[:len(buf)-3]))
	var lastErr error
	for {
		_, _, err := rd.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == io.EOF {
		t.Fatal("torn stream read as clean EOF")
	}
}

func TestCorruptionDetected(t *testing.T) {
	frame, err := EncodeRunResult(sampleResponse())
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{5, 6, HeaderSize, HeaderSize + 9, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[off] ^= 0x40
		if _, err := DecodeRunResult(bad); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
	}
}

func TestNonCanonicalRejected(t *testing.T) {
	// An unsorted LinkInventory is not a canonical encoding.
	resp := sampleResponse()
	frame, err := EncodeRunResult(resp)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the two map entries (4 keys sorted W<PW<B<L = 0,1,2,3) and swap
	// the first two 9-byte entries, fixing up the CRC so only ordering is
	// wrong.
	d, err := DecodeRunResult(frame)
	if err != nil || len(d.Stats.LinkInventory) != 4 {
		t.Fatalf("setup: %v", err)
	}
	// Rebuild with a tampered payload: swapping bytes invalidates the CRC,
	// which must already be enough to reject; ordering violations are
	// covered by crafting the payload through the encoder internals.
	e := &enc{}
	e.u8(1)
	e.u32(2)
	e.u8(3) // L before W: not strictly increasing once 0 follows
	e.f64(1)
	e.u8(0)
	e.f64(2)
	dd := &dec{b: e.b}
	if dd.presence() {
		n := dd.count(9)
		prev := -1
		for i := 0; i < n && dd.err == nil; i++ {
			k := dd.u8()
			if int(k) <= prev {
				dd.fail("unsorted")
			}
			prev = int(k)
			dd.f64()
		}
	}
	if dd.err == nil {
		t.Fatal("unsorted map order accepted")
	}

	// A bool byte other than 0/1 is rejected.
	bd := &dec{b: []byte{2}}
	bd.presence()
	if bd.err == nil {
		t.Fatal("presence byte 2 accepted")
	}

	// Trailing bytes are rejected.
	td := &dec{b: []byte{0, 99}}
	td.presence()
	if err := td.finish(); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// A run-result frame whose summary word disagrees with the payload IPC
	// is rejected even with a valid CRC.
	resp2 := sampleResponse()
	frame2, _ := EncodeRunResult(resp2)
	forged, _ := appendFrame(nil, TypeRunResult, 0, 0, math.Float64bits(resp2.IPC)+1, frame2[HeaderSize:])
	if _, err := DecodeRunResult(forged); err == nil {
		t.Fatal("summary/payload disagreement accepted")
	}
}

func TestTraceContainerRoundTrip(t *testing.T) {
	lines := []string{
		`{"schema":"hetwire-trace/v1","benchmark":"gcc"}`,
		`{"cycle":1000,"ipc":0.5}`,
		`{"cycle":2000,"ipc":0.75}`,
	}
	jsonl := strings.Join(lines, "\n") + "\n"

	var bin bytes.Buffer
	tw := NewTraceWriter(&bin)
	// Write in awkward chunks to exercise line buffering.
	for i := 0; i < len(jsonl); i += 7 {
		end := i + 7
		if end > len(jsonl) {
			end = len(jsonl)
		}
		if _, err := tw.Write([]byte(jsonl[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsWire(bin.Bytes()) {
		t.Fatal("trace container does not sniff as wire")
	}
	if n, err := Count(bin.Bytes()); err != nil || n != len(lines) {
		t.Fatalf("Count = %d, %v; want %d", n, err, len(lines))
	}
	back, err := io.ReadAll(NewTraceReader(bytes.NewReader(bin.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != jsonl {
		t.Fatalf("trace container round trip:\n got %q\nwant %q", back, jsonl)
	}

	// Out-of-order sequence numbers are rejected.
	frames, _ := Split(bin.Bytes())
	swapped := append(append(append([]byte(nil), frames[0]...), frames[2]...), frames[1]...)
	if _, err := io.ReadAll(NewTraceReader(bytes.NewReader(swapped))); err == nil {
		t.Fatal("out-of-order trace records accepted")
	}
}

func TestUploadFramesRoundTrip(t *testing.T) {
	result, err := EncodeRunResult(sampleResponse())
	if err != nil {
		t.Fatal(err)
	}
	uh := &UploadHeader{
		NodeID:  "node-1",
		LeaseID: "lease-9",
		JobID:   "job-3",
		Spans:   []SpanMS{{Name: "node_sim", DurMS: 12.5}, {Name: "node_upload", DurMS: 0.25}},
	}
	hf, err := AppendUploadHeader(nil, uh)
	if err != nil {
		t.Fatal(err)
	}
	gotH, err := DecodeUploadHeader(hf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotH, uh) {
		t.Fatalf("upload header mismatch: %+v vs %+v", gotH, uh)
	}
	if again, _ := AppendUploadHeader(nil, gotH); !bytes.Equal(again, hf) {
		t.Fatal("upload header re-encode is not byte-identical")
	}

	cases := []*UploadResult{
		{Index: 0, CacheKey: "k0", Frame: result},
		{Index: 1, CacheKey: "k1", Skipped: true},
		{Index: 2, Error: "sim exploded", Reason: "internal"},
	}
	for i, ur := range cases {
		fr, err := AppendUploadResult(nil, ur)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeUploadResult(fr)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, ur) {
			t.Fatalf("case %d: mismatch %+v vs %+v", i, got, ur)
		}
		if again, _ := AppendUploadResult(nil, got); !bytes.Equal(again, fr) {
			t.Fatalf("case %d: re-encode is not byte-identical", i)
		}
	}
	if _, err := AppendUploadResult(nil, &UploadResult{Index: 0, Frame: result, Skipped: true}); err == nil {
		t.Fatal("frame+skip upload result must not encode")
	}
}

func TestResultDecodesCounter(t *testing.T) {
	frame, err := EncodeRunResult(sampleResponse())
	if err != nil {
		t.Fatal(err)
	}
	before := ResultDecodes.Value()
	if _, err := PeekHeader(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(frame); err != nil {
		t.Fatal(err)
	}
	if err := ValidateResultFrame(frame); err != nil {
		t.Fatal(err)
	}
	if got := ResultDecodes.Value(); got != before {
		t.Fatalf("peek/count/validate moved the decode counter: %d -> %d", before, got)
	}
	if _, err := DecodeRunResult(frame); err != nil {
		t.Fatal(err)
	}
	if got := ResultDecodes.Value(); got != before+1 {
		t.Fatalf("decode counter = %d, want %d", got, before+1)
	}
}
