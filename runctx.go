package hetwire

import (
	"context"
	"fmt"

	"hetwire/internal/core"
	"hetwire/internal/trace"
	"hetwire/internal/workload"
)

// CtxCheckInterval re-exports the simulator's cancellation granularity: the
// number of committed instructions between context polls. Cancelling a
// running simulation stops it within one interval (low milliseconds at
// observed throughput); results of completed runs are bit-identical whether
// or not a context is supplied.
const CtxCheckInterval = core.CtxCheckInterval

// RunContext is Run with cooperative cancellation and the forward-progress
// watchdog: ctx is polled every CtxCheckInterval committed instructions, and
// the run aborts with a diagnostic error if the commit frontier stops
// advancing (see core.NoProgressError). On error the partial statistics are
// still returned in the Result.
func (s *Simulator) RunContext(ctx context.Context, src trace.Stream, n uint64) (Result, error) {
	st, err := s.proc.RunContext(ctx, src, n)
	res := Result{Stats: st, Config: s.cfg}
	if named, ok := src.(interface{ Name() string }); ok {
		res.Benchmark = named.Name()
	}
	return res, err
}

// RunBenchmarkContext is RunBenchmark with cooperative cancellation: the
// simulation stops within CtxCheckInterval committed instructions of ctx
// being cancelled, returning ctx's error and the partial result.
func RunBenchmarkContext(ctx context.Context, cfg Config, benchmark string, n uint64) (Result, error) {
	prof, ok := workload.ByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("hetwire: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	return runPooled(ctx, cfg, benchmark, prof, n)
}

// RunKernelContext is RunKernel with cooperative cancellation (see
// RunBenchmarkContext).
func RunKernelContext(ctx context.Context, cfg Config, kernel string, n uint64) (Result, error) {
	prof, ok := workload.KernelByName(kernel)
	if !ok {
		return Result{}, fmt.Errorf("hetwire: unknown kernel %q (see Kernels())", kernel)
	}
	return runPooled(ctx, cfg, kernel, prof, n)
}

// runPooled executes one named workload on a pooled scratch processor
// (core.RunScratch): processors are keyed by ConfigHash and revived with
// Reset instead of being rebuilt per run, so repeated jobs on the same
// configuration — batch sweeps, server workers, the golden corpus — skip
// the tens of megabytes of construction a fresh machine costs. Results are
// bit-identical to a fresh build (core.Processor.Reset's contract).
// Configurations without a canonical hash fall back to unpooled runs.
func runPooled(ctx context.Context, cfg Config, name string, prof workload.Profile, n uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	key, err := ConfigHash(cfg)
	if err != nil {
		key = ""
	}
	scr := core.AcquireScratch(key, cfg)
	st, runErr := scr.Proc().RunContext(ctx, workload.NewGenerator(prof), n)
	scr.Release()
	return Result{Stats: st, Config: cfg, Benchmark: name}, runErr
}

// RunMultiprogrammedContext is RunMultiprogrammed with cooperative
// cancellation: ctx is polled every CtxCheckInterval committed instructions
// summed across threads. On cancellation the partial per-thread results are
// returned alongside ctx's error.
func RunMultiprogrammedContext(ctx context.Context, cfg Config, benchmarks []string, n uint64) ([]ThreadResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(benchmarks) == 0 || len(benchmarks) > cfg.Topology.Clusters() {
		return nil, fmt.Errorf("hetwire: need between 1 and %d threads, got %d",
			cfg.Topology.Clusters(), len(benchmarks))
	}
	profs, err := multiprogProfiles(benchmarks)
	if err != nil {
		return nil, err
	}
	streams := make([]trace.Stream, len(profs))
	for i, prof := range profs {
		streams[i] = workload.NewGenerator(prof)
	}
	res, runErr := core.RunMultiprogramContext(ctx, cfg, streams, n)
	out := make([]ThreadResult, len(res))
	for i, r := range res {
		out[i] = ThreadResult{Benchmark: benchmarks[i], Clusters: r.Clusters, Stats: r.Stats}
	}
	return out, runErr
}

// runAnyContext is runAny with cancellation, accepting both benchmark and
// kernel names.
func runAnyContext(ctx context.Context, cfg Config, name string, n uint64) (Result, error) {
	if _, ok := workload.ByName(name); ok {
		return RunBenchmarkContext(ctx, cfg, name, n)
	}
	return RunKernelContext(ctx, cfg, name, n)
}
