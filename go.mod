module hetwire

go 1.22
