package hetwire

import (
	"crypto/sha256"
	"encoding/hex"
)

// ConfigHash returns a stable content hash of the sweep-relevant machine
// configuration: the SHA-256 of its canonical JSON form (see ConfigJSON),
// hex-encoded. Two configs hash equally exactly when every knob a config
// file can express agrees, regardless of how either Config value was
// constructed — the property the hetwired result cache keys on. Configs
// with a custom (unnamed) link composition have no canonical form and
// return an error.
func ConfigHash(cfg Config) (string, error) {
	raw, err := ConfigJSON(cfg)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
