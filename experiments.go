package hetwire

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"hetwire/internal/batch"
	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/energy"
	"hetwire/internal/stats"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
	"hetwire/internal/workload"
)

// Options controls an experiment driver run.
type Options struct {
	// Instructions per benchmark (the paper simulates 100M; the default of
	// 300k reproduces the relative behaviour in seconds).
	Instructions uint64
	// Warmup instructions simulated before statistics are measured (the
	// paper warms structures for 1M instructions). Default: a tenth of
	// Instructions.
	Warmup uint64
	// Benchmarks restricts the suite (default: all 23).
	Benchmarks []string
	// Parallelism bounds concurrent benchmark runs (default: GOMAXPROCS).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Instructions == 0 {
		o.Instructions = 300_000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Warmup == 0 {
		o.Warmup = o.Instructions / 10
	}
	return o
}

// suiteRun aggregates one configuration's run over the benchmark suite.
type suiteRun struct {
	perBench map[string]core.Stats
	ipcs     []float64
}

// AMIPC returns the arithmetic-mean IPC over the suite (the paper's metric).
func (s suiteRun) AMIPC() float64 { return stats.ArithmeticMean(s.ipcs) }

// measurement converts the aggregate run into the energy model's input:
// cycles and traffic summed over the suite.
func (s suiteRun) measurement(inventory map[wires.Class]float64) energy.RunMeasurement {
	var m energy.RunMeasurement
	m.Inventory = inventory
	for _, st := range s.perBench {
		m.Cycles += st.Cycles
		for i := range m.Net {
			m.Net[i].Transfers += st.Net[i].Transfers
			m.Net[i].Bits += st.Net[i].Bits
			m.Net[i].BitHops += st.Net[i].BitHops
			m.Net[i].WaitCycles += st.Net[i].WaitCycles
		}
	}
	return m
}

// runSuite simulates every benchmark on the configuration, in parallel on
// the batch engine: one engine item per benchmark, statistics collected into
// index-addressed slots so the aggregate is deterministic regardless of
// completion order, CPU tokens shared with every other parallel surface in
// the process (a driver running inside a hetwired worker composes with the
// daemon's pool instead of oversubscribing it).
func runSuite(cfg config.Config, opt Options) suiteRun {
	profs := make([]workload.Profile, len(opt.Benchmarks))
	for i, name := range opt.Benchmarks {
		prof, ok := workload.ByName(name)
		if !ok {
			panic(fmt.Sprintf("hetwire: unknown benchmark %q", name))
		}
		profs[i] = prof
	}
	sts := make([]core.Stats, len(profs))
	errs := batch.Run(context.Background(), len(profs), opt.Parallelism, func(_ context.Context, i int) error {
		proc := core.New(cfg)
		gen := workload.NewGenerator(profs[i])
		proc.Warmup(gen, opt.Warmup)
		sts[i] = proc.Run(gen, opt.Instructions)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			// Simulations never return errors here; an entry means the item
			// panicked (the engine contains it). That is a simulator bug the
			// drivers must not paper over.
			panic(fmt.Sprintf("hetwire: suite benchmark %s: %v", profs[i].Name, err))
		}
	}
	out := suiteRun{perBench: make(map[string]core.Stats, len(opt.Benchmarks))}
	for i, name := range opt.Benchmarks {
		out.perBench[name] = sts[i]
		out.ipcs = append(out.ipcs, sts[i].IPC())
	}
	return out
}

// inventoryFor builds a network just to read its physical wire inventory.
func inventoryFor(cfg config.Config) map[wires.Class]float64 {
	return core.New(cfg).Run(emptyStream{}, 0).LinkInventory
}

type emptyStream struct{}

func (emptyStream) Next(*trace.Instr) bool { return false }

// Figure3Result holds the per-benchmark IPC comparison of paper Figure 3:
// the baseline 4-cluster machine (144 B-wires per link) versus the same
// machine with an added L-wire layer driving the Section 4 low-latency
// optimisations.
type Figure3Result struct {
	Benchmarks  []string
	BaselineIPC []float64
	LWireIPC    []float64
	BaselineAM  float64
	LWireAM     float64
	SpeedupPct  float64 // paper: 4.2%
}

// Figure3 regenerates paper Figure 3.
func Figure3(opt Options) Figure3Result {
	opt = opt.withDefaults()
	base := runSuite(config.Default(), opt)

	lw := config.Default()
	lw.Model.Link.LWires = 18 // add one L-wire layer to every link
	lw.Tech = config.AllTechniques()
	lw.Tech.PWReadyOperands = false
	lw.Tech.PWStoreData = false
	lw.Tech.PWLoadBalance = false
	lwRun := runSuite(lw, opt)

	r := Figure3Result{Benchmarks: opt.Benchmarks}
	for _, b := range opt.Benchmarks {
		r.BaselineIPC = append(r.BaselineIPC, base.perBench[b].IPC())
		r.LWireIPC = append(r.LWireIPC, lwRun.perBench[b].IPC())
	}
	r.BaselineAM = base.AMIPC()
	r.LWireAM = lwRun.AMIPC()
	r.SpeedupPct = 100 * (r.LWireAM/r.BaselineAM - 1)
	return r
}

// String renders the figure as a text table.
func (r Figure3Result) String() string {
	t := stats.NewTable("benchmark", "baseline IPC", "+L-wires IPC", "speedup %")
	for i, b := range r.Benchmarks {
		t.AddRow(b, r.BaselineIPC[i], r.LWireIPC[i], 100*(r.LWireIPC[i]/r.BaselineIPC[i]-1))
	}
	t.AddRow("AM", r.BaselineAM, r.LWireAM, r.SpeedupPct)
	return t.String()
}

// TableRow is one interconnect model's results in the Table 3/4 format.
type TableRow struct {
	Model       ModelID
	Description string
	MetalArea   float64
	IPC         float64 // arithmetic mean over the suite
	RelICDyn    float64 // relative interconnect dynamic energy (Model I = 100)
	RelICLkg    float64
	RelEnergy10 float64 // relative processor energy at 10% IC share
	RelEnergy20 float64
	RelED2At10  float64
	RelED2At20  float64
}

// TableResult holds the full Table 3 or Table 4 reproduction.
type TableResult struct {
	Topology config.Topology
	Rows     []TableRow
}

// modelTable runs all ten models on the topology and fills every energy
// column, normalised against Model I exactly as the paper does.
func modelTable(topology config.Topology, opt Options) TableResult {
	opt = opt.withDefaults()

	type entry struct {
		spec config.ModelSpec
		run  suiteRun
		meas energy.RunMeasurement
	}
	entries := make([]entry, 0, 10)
	for _, spec := range config.Models() {
		cfg := config.Default().WithModel(spec.ID)
		cfg.Topology = topology
		run := runSuite(cfg, opt)
		entries = append(entries, entry{spec: spec, run: run, meas: run.measurement(inventoryFor(cfg))})
	}

	em10 := energy.Model{Baseline: entries[0].meas, ICFraction: 0.10}
	em20 := energy.Model{Baseline: entries[0].meas, ICFraction: 0.20}

	out := TableResult{Topology: topology}
	for _, e := range entries {
		out.Rows = append(out.Rows, TableRow{
			Model:       e.spec.ID,
			Description: e.spec.Link.String(),
			MetalArea:   e.spec.Link.MetalArea(),
			IPC:         e.run.AMIPC(),
			RelICDyn:    em10.RelativeICDynamic(e.meas),
			RelICLkg:    em10.RelativeICLeakage(e.meas),
			RelEnergy10: em10.RelativeProcessorEnergy(e.meas),
			RelEnergy20: em20.RelativeProcessorEnergy(e.meas),
			RelED2At10:  em10.RelativeED2(e.meas),
			RelED2At20:  em20.RelativeED2(e.meas),
		})
	}
	return out
}

// Table3 regenerates paper Table 3 (4-cluster systems).
func Table3(opt Options) TableResult { return modelTable(config.Crossbar4, opt) }

// Table4 regenerates paper Table 4 (16-cluster systems).
func Table4(opt Options) TableResult { return modelTable(config.HierRing16, opt) }

// String renders the table in the paper's layout.
func (t TableResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v, all values except IPC normalised to Model-I=100\n", t.Topology)
	tab := stats.NewTable("model", "link (per direction)", "area", "IPC",
		"IC-dyn", "IC-lkg", "E(10%)", "ED2(10%)", "E(20%)", "ED2(20%)")
	for _, r := range t.Rows {
		tab.AddRow(r.Model.String(), r.Description, r.MetalArea, r.IPC,
			r.RelICDyn, r.RelICLkg, r.RelEnergy10, r.RelED2At10, r.RelEnergy20, r.RelED2At20)
	}
	b.WriteString(tab.String())
	return b.String()
}

// BestED2 returns the row with the lowest ED^2 at the given interconnect
// share (10 or 20).
func (t TableResult) BestED2(icPercent int) TableRow {
	best := t.Rows[0]
	for _, r := range t.Rows {
		v, bv := r.RelED2At10, best.RelED2At10
		if icPercent == 20 {
			v, bv = r.RelED2At20, best.RelED2At20
		}
		if v < bv {
			best = r
		}
	}
	return best
}

// LatencySensitivityResult is the Section 1 claim: IPC loss when the
// inter-cluster latency doubles (paper: ~12%).
type LatencySensitivityResult struct {
	BaselineAM   float64
	DoubledAM    float64
	SlowdownPct  float64
	PerBenchmark map[string][2]float64
}

// LatencySensitivity doubles all interconnect latencies on the baseline and
// reports the slowdown.
func LatencySensitivity(opt Options) LatencySensitivityResult {
	opt = opt.withDefaults()
	base := runSuite(config.Default(), opt)
	slow := config.Default()
	slow.LatencyScale = 2
	s2 := runSuite(slow, opt)
	r := LatencySensitivityResult{
		BaselineAM:   base.AMIPC(),
		DoubledAM:    s2.AMIPC(),
		PerBenchmark: make(map[string][2]float64, len(opt.Benchmarks)),
	}
	r.SlowdownPct = 100 * (1 - r.DoubledAM/r.BaselineAM)
	for _, b := range opt.Benchmarks {
		r.PerBenchmark[b] = [2]float64{base.perBench[b].IPC(), s2.perBench[b].IPC()}
	}
	return r
}

// ScalingResult covers the Section 5.3 scaling studies.
type ScalingResult struct {
	// FourClusterAM and SixteenClusterAM are baseline Model-I IPCs; the
	// paper reports a 17% single-thread improvement from 4 to 16 clusters.
	FourClusterAM    float64
	SixteenClusterAM float64
	ClusterGainPct   float64
	// WireConstrainedGainPct is the L-wire layer speedup with doubled
	// latencies (paper: 7.1%).
	WireConstrainedGainPct float64
	// SixteenClusterLWireGainPct is the L-wire layer speedup on the
	// 16-cluster machine (paper: 7.4%).
	SixteenClusterLWireGainPct float64
}

// ScalingStudies regenerates the Section 5.3 text claims.
func ScalingStudies(opt Options) ScalingResult {
	opt = opt.withDefaults()
	var r ScalingResult

	base4 := runSuite(config.Default(), opt)
	cfg16 := config.Default()
	cfg16.Topology = config.HierRing16
	base16 := runSuite(cfg16, opt)
	r.FourClusterAM = base4.AMIPC()
	r.SixteenClusterAM = base16.AMIPC()
	r.ClusterGainPct = 100 * (r.SixteenClusterAM/r.FourClusterAM - 1)

	lwTech := func(c config.Config) config.Config {
		c.Model.Link.LWires = 18
		c.Tech = config.AllTechniques()
		c.Tech.PWReadyOperands = false
		c.Tech.PWStoreData = false
		c.Tech.PWLoadBalance = false
		return c
	}

	slow := config.Default()
	slow.LatencyScale = 2
	slowBase := runSuite(slow, opt)
	slowLW := runSuite(lwTech(slow), opt)
	r.WireConstrainedGainPct = 100 * (slowLW.AMIPC()/slowBase.AMIPC() - 1)

	lw16 := runSuite(lwTech(cfg16), opt)
	r.SixteenClusterLWireGainPct = 100 * (lw16.AMIPC()/base16.AMIPC() - 1)
	return r
}

// ClaimsResult instruments the Section 4 mechanism-level claims.
type ClaimsResult struct {
	// FalseDepPct: loads whose 8-LS-bit partial comparison matched an
	// earlier store but whose full address did not (paper: < 9%).
	FalseDepPct float64
	// NarrowCoveragePct and NarrowFalsePct: narrow predictor quality
	// (paper: 95% and 2%).
	NarrowCoveragePct float64
	NarrowFalsePct    float64
	// NarrowTrafficPct: operand transfers whose value fits 10 bits
	// (paper: 14% of register traffic is in [0, 1023]).
	NarrowTrafficPct float64
	// PWTrafficPct: transfers diverted to PW wires under Model V
	// (paper: 36%).
	PWTrafficPct float64
	// ContentionReductionPct: drop in buffered-contention cycles on the
	// Model V hardware when the Section 4 PW steering criteria are enabled,
	// versus forcing all steerable traffic onto the B plane (paper: the
	// criteria reduce overall contention by 14%).
	ContentionReductionPct float64
	// PWSteeringIPCCostPct: IPC cost of the PW criteria relative to
	// Model IV (paper: ~1%).
	PWSteeringIPCCostPct float64
}

// Claims measures the paper's mechanism-level statistics.
func Claims(opt Options) ClaimsResult {
	opt = opt.withDefaults()
	var r ClaimsResult

	// L-wire pipeline stats on the Model VII machine.
	cfg := config.Default().WithModel(config.ModelVII)
	run := runSuite(cfg, opt)
	var checks, falseDeps, xfers, narrowEligible uint64
	for _, st := range run.perBench {
		checks += st.PartialChecks
		falseDeps += st.PartialFalseDeps
		xfers += st.OperandTransfers
		narrowEligible += st.NarrowEligible
	}
	if checks > 0 {
		r.FalseDepPct = 100 * float64(falseDeps) / float64(checks)
	}
	if xfers > 0 {
		r.NarrowTrafficPct = 100 * float64(narrowEligible) / float64(xfers)
	}

	// Narrow predictor rates on one long run.
	sim, err := NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	prof, _ := workload.ByName("gzip")
	sim.Run(workload.NewGenerator(prof), opt.Instructions)
	cov, fr := sim.NarrowPredictorRates()
	r.NarrowCoveragePct = 100 * cov
	r.NarrowFalsePct = 100 * fr

	// PW diversion and contention: Model V with the steering criteria,
	// versus the same hardware with the criteria disabled (everything
	// steerable stays on B-wires), and versus Model IV for the IPC cost.
	mv := runSuite(config.Default().WithModel(config.ModelV), opt)
	mvOff := config.Default().WithModel(config.ModelV)
	mvOff.Tech.PWReadyOperands = false
	mvOff.Tech.PWStoreData = false
	mvOff.Tech.PWLoadBalance = false
	mvNoCriteria := runSuite(mvOff, opt)
	miv := runSuite(config.Default().WithModel(config.ModelIV), opt)

	var pwT, allT, waitOn, waitOff uint64
	for _, st := range mv.perBench {
		pwT += st.Net[1].Transfers
		for i := range st.Net {
			allT += st.Net[i].Transfers
		}
		waitOn += st.WaitCycles
	}
	for _, st := range mvNoCriteria.perBench {
		waitOff += st.WaitCycles
	}
	if allT > 0 {
		r.PWTrafficPct = 100 * float64(pwT) / float64(allT)
	}
	if waitOff > 0 {
		r.ContentionReductionPct = 100 * (1 - float64(waitOn)/float64(waitOff))
	}
	if miv.AMIPC() > 0 {
		r.PWSteeringIPCCostPct = 100 * (1 - mv.AMIPC()/miv.AMIPC())
	}
	return r
}

// CSV renders the figure as comma-separated rows (benchmark, baseline IPC,
// L-wire IPC) for external plotting.
func (r Figure3Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,baseline_ipc,lwire_ipc\n")
	for i, bench := range r.Benchmarks {
		fmt.Fprintf(&b, "%s,%.4f,%.4f\n", bench, r.BaselineIPC[i], r.LWireIPC[i])
	}
	fmt.Fprintf(&b, "AM,%.4f,%.4f\n", r.BaselineAM, r.LWireAM)
	return b.String()
}

// CSV renders the table as comma-separated rows for external plotting.
func (t TableResult) CSV() string {
	var b strings.Builder
	b.WriteString("model,link,metal_area,ipc,ic_dyn,ic_lkg,energy10,ed2_10,energy20,ed2_20\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%q,%.1f,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			r.Model, r.Description, r.MetalArea, r.IPC,
			r.RelICDyn, r.RelICLkg, r.RelEnergy10, r.RelED2At10, r.RelEnergy20, r.RelED2At20)
	}
	return b.String()
}

// SortedBenchmarks returns the benchmark names sorted alphabetically (the
// paper's Figure 3 order).
func SortedBenchmarks() []string {
	n := workload.Names()
	sort.Strings(n)
	return n
}

// ExtensionsResult evaluates the future-work directions the paper sketches
// (Sections 5.3 and 7), implemented here as optional techniques on top of
// the Model VII machine.
type ExtensionsResult struct {
	BaseIPC float64 // Model VII with the paper's evaluated techniques
	// FrequentValueIPC adds 8-entry frequent-value compaction so repeated
	// wide values also ride L-wires.
	FrequentValueIPC float64
	FVTrafficPct     float64 // share of operand transfers compacted
	// CriticalWordIPC adds L-wire critical-word returns for L2/memory
	// loads.
	CriticalWordIPC float64
	CriticalWords   uint64
	// AllExtensionsIPC enables everything together.
	AllExtensionsIPC float64
	// TransmissionLineED2 is Model VII's relative ED^2 (vs RC Model VII =
	// 100) when the L plane is implemented as transmission lines (3x lower
	// dynamic energy; paper Section 5.2).
	TransmissionLineED2 float64
}

// Extensions measures the extension techniques.
func Extensions(opt Options) ExtensionsResult {
	opt = opt.withDefaults()
	var r ExtensionsResult

	base := config.Default().WithModel(config.ModelVII)
	baseRun := runSuite(base, opt)
	r.BaseIPC = baseRun.AMIPC()

	fv := base
	fv.Tech.FrequentValueEnc = true
	fvRun := runSuite(fv, opt)
	r.FrequentValueIPC = fvRun.AMIPC()
	var fvT, opT uint64
	for _, st := range fvRun.perBench {
		fvT += st.FVTransfers
		opT += st.OperandTransfers
	}
	if opT > 0 {
		r.FVTrafficPct = 100 * float64(fvT) / float64(opT)
	}

	cw := base
	cw.Tech.CriticalWordOnL = true
	cwRun := runSuite(cw, opt)
	r.CriticalWordIPC = cwRun.AMIPC()
	for _, st := range cwRun.perBench {
		r.CriticalWords += st.CriticalWordOnL
	}

	all := base
	all.Tech.FrequentValueEnc = true
	all.Tech.CriticalWordOnL = true
	allRun := runSuite(all, opt)
	r.AllExtensionsIPC = allRun.AMIPC()

	// Transmission-line L plane: identical timing at this clock, one third
	// the L-plane dynamic energy.
	inv := inventoryFor(base)
	rcMeas := baseRun.measurement(inv)
	tlMeas := rcMeas
	tlMeas.TransmissionLineL = true
	em := energy.Model{Baseline: rcMeas, ICFraction: 0.20}
	r.TransmissionLineED2 = em.RelativeED2(tlMeas)
	return r
}

// Bars renders Figure 3 the way the paper draws it: paired horizontal bars
// per benchmark (baseline vs +L-wires), scaled to the given width.
func (r Figure3Result) Bars(width int) string {
	if width < 20 {
		width = 20
	}
	maxIPC := 0.0
	for i := range r.Benchmarks {
		if r.LWireIPC[i] > maxIPC {
			maxIPC = r.LWireIPC[i]
		}
		if r.BaselineIPC[i] > maxIPC {
			maxIPC = r.BaselineIPC[i]
		}
	}
	if maxIPC == 0 {
		return ""
	}
	var b strings.Builder
	bar := func(v float64, ch byte) string {
		n := int(v / maxIPC * float64(width))
		return strings.Repeat(string(ch), n)
	}
	fmt.Fprintf(&b, "%-9s %s\n", "", "baseline '#', +L-wires '=' (IPC, bar width proportional)")
	for i, bench := range r.Benchmarks {
		fmt.Fprintf(&b, "%-9s %-*s %.3f\n", bench, width, bar(r.BaselineIPC[i], '#'), r.BaselineIPC[i])
		fmt.Fprintf(&b, "%-9s %-*s %.3f\n", "", width, bar(r.LWireIPC[i], '='), r.LWireIPC[i])
	}
	fmt.Fprintf(&b, "%-9s %-*s %.3f\n", "AM", width, bar(r.BaselineAM, '#'), r.BaselineAM)
	fmt.Fprintf(&b, "%-9s %-*s %.3f\n", "", width, bar(r.LWireAM, '='), r.LWireAM)
	return b.String()
}

// LatencyCurve sweeps the interconnect latency multiplier and reports the
// AM IPC at each point — extending the Section 1 doubling experiment to a
// curve (and the Section 5.3 wire-constrained argument to arbitrary
// future-technology severity).
type LatencyCurve struct {
	Scales []int
	AMIPC  []float64
	// LWireGainPct is the L-wire layer's speedup at each scale: the
	// paper's claim is that it grows as wires get slower.
	LWireGainPct []float64
}

// SweepLatencyScale runs the baseline and the +L-wire machine at each
// latency multiplier.
func SweepLatencyScale(scales []int, opt Options) LatencyCurve {
	opt = opt.withDefaults()
	var out LatencyCurve
	for _, sc := range scales {
		base := config.Default()
		base.LatencyScale = sc
		b := runSuite(base, opt)

		lw := base
		lw.Model.Link.LWires = 18
		lw.Tech = config.AllTechniques()
		lw.Tech.PWReadyOperands = false
		lw.Tech.PWStoreData = false
		lw.Tech.PWLoadBalance = false
		l := runSuite(lw, opt)

		out.Scales = append(out.Scales, sc)
		out.AMIPC = append(out.AMIPC, b.AMIPC())
		out.LWireGainPct = append(out.LWireGainPct, 100*(l.AMIPC()/b.AMIPC()-1))
	}
	return out
}
