package hetwire

import (
	"context"
	"fmt"
	"io"

	"hetwire/internal/core"
	"hetwire/internal/obs"
	"hetwire/internal/trace"
	"hetwire/internal/workload"
)

// Probe re-exports the simulator's telemetry interface: an attached probe
// receives read-only interval samples every ProbeInterval committed
// instructions plus one final end-of-run sample. Attaching a probe never
// changes simulated behaviour — the golden corpus pins bit-identical results
// with probes on and off — and a run without one pays only a nil pointer
// comparison per interval.
type Probe = core.Probe

// ProbeSample re-exports the per-interval snapshot handed to a Probe.
type ProbeSample = core.ProbeSample

// ProbeInterval is the sampling cadence in committed instructions.
const ProbeInterval = core.ProbeInterval

// SetProbe attaches a telemetry probe to the simulator (nil detaches).
func (s *Simulator) SetProbe(p Probe) { s.proc.SetProbe(p) }

// ExecuteProbed is ExecuteContext with wire-class telemetry: the simulation
// streams interval samples to w as a JSONL trace (schema obs.Schema,
// currently hetwire-trace/v1) readable by the hetwiretrace CLI. The response
// is bit-identical to an unprobed ExecuteContext run of the same request.
//
// Only single-program requests can be probed: a multiprogrammed run
// interleaves several processors on one shared fabric and has no
// single-machine sample to emit. Multiprogrammed requests are rejected with
// ReasonProbeUnsupported.
func (r *RunRequest) ExecuteProbed(ctx context.Context, w io.Writer) (*RunResponse, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.Benchmark == "" {
		return nil, &RequestError{
			Code: ReasonProbeUnsupported,
			Err:  fmt.Errorf("hetwire: telemetry probing supports single-program requests only (got %d programs)", len(r.Benchmarks)),
		}
	}
	cfg, err := r.ResolveConfig()
	if err != nil {
		return nil, err
	}
	n := r.Instructions()
	cfgHash, err := ConfigHash(cfg)
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(w, obs.Header{
		Benchmark:         r.Benchmark,
		Model:             cfg.Model.ID.String(),
		Clusters:          cfg.Topology.Clusters(),
		N:                 n,
		ConfigHash:        cfgHash,
		TransmissionLineL: cfg.Tech.TransmissionLineL,
	})

	var src trace.Stream
	if prof, ok := workload.ByName(r.Benchmark); ok {
		src = workload.NewGenerator(prof)
	} else if prof, ok := workload.KernelByName(r.Benchmark); ok {
		src = workload.NewGenerator(prof)
	} else {
		// Unreachable after Validate, but fail closed.
		return nil, &RequestError{Code: ReasonUnknownBenchmark,
			Err: fmt.Errorf("hetwire: unknown benchmark %q", r.Benchmark)}
	}

	sim, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	sim.SetProbe(rec)
	res, runErr := sim.RunContext(ctx, src, n)
	if err := rec.Flush(); err != nil && runErr == nil {
		runErr = fmt.Errorf("hetwire: writing telemetry trace: %w", err)
	}
	if runErr != nil {
		return nil, runErr
	}
	res.Benchmark = r.Benchmark
	st := res.Stats
	return &RunResponse{
		Model:        cfg.Model.ID.String(),
		Clusters:     cfg.Topology.Clusters(),
		N:            n,
		Benchmark:    res.Benchmark,
		IPC:          st.IPC(),
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		Stats:        &st,
	}, nil
}
