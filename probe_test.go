package hetwire

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"reflect"
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/obs"
	"hetwire/internal/workload"
)

// TestProbeGoldenIdentical is the read-only contract's enforcement: a probed
// run must hash bit-identically to the pinned golden fixture for the same
// scenario — sampling telemetry observes the machine, it never perturbs it.
func TestProbeGoldenIdentical(t *testing.T) {
	raw, err := os.ReadFile(goldenFile(config.ModelV))
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	fixture := make(map[string]string)
	if err := json.Unmarshal(raw, &fixture); err != nil {
		t.Fatal(err)
	}
	key := goldenKey("crossbar4", "gcc", 16_000)
	wantHash, ok := fixture[key]
	if !ok {
		t.Fatalf("fixture has no %s", key)
	}

	req := &RunRequest{Benchmark: "gcc", Model: "V", Clusters: 4, N: 16_000}
	var buf bytes.Buffer
	probed, err := req.ExecuteProbed(context.Background(), &buf)
	if err != nil {
		t.Fatalf("ExecuteProbed: %v", err)
	}
	got := ResultHash(Result{Stats: *probed.Stats, Benchmark: probed.Benchmark})
	if got != wantHash {
		t.Errorf("probed run drifted from golden: ResultHash = %s, golden = %s\n"+
			"the probe perturbed the simulation — it must be strictly read-only", got, wantHash)
	}

	// And the full response must equal the unprobed serving path's.
	plain, err := req.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Error("probed RunResponse differs from unprobed RunResponse")
	}
}

// TestExecuteProbedTrace checks the trace a probed execution streams: it
// parses under the versioned schema, samples arrive at the documented
// cadence, cumulative counters are monotone, and the summary carries all
// four wire-class rows.
func TestExecuteProbedTrace(t *testing.T) {
	req := &RunRequest{Benchmark: "gcc", Model: "V", Clusters: 4, N: 40_000}
	var buf bytes.Buffer
	resp, err := req.ExecuteProbed(context.Background(), &buf)
	if err != nil {
		t.Fatalf("ExecuteProbed: %v", err)
	}
	hdr, samples, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if hdr.Benchmark != "gcc" || hdr.N != 40_000 || hdr.Interval != ProbeInterval {
		t.Errorf("header = %+v", hdr)
	}
	if hdr.ConfigHash == "" {
		t.Error("header missing config hash")
	}
	if len(hdr.Inventory) == 0 {
		t.Error("header missing link inventory")
	}
	// 40_000 instructions at an 8192 cadence: 4 interval samples + 1 final.
	wantSamples := int(req.N/ProbeInterval) + 1
	if len(samples) != wantSamples {
		t.Errorf("got %d samples, want %d", len(samples), wantSamples)
	}
	last := samples[len(samples)-1]
	if !last.Final {
		t.Error("last sample not marked final")
	}
	if last.Committed != resp.Instructions || last.Cycle != resp.Cycles {
		t.Errorf("final sample committed/cycle = %d/%d, response = %d/%d",
			last.Committed, last.Cycle, resp.Instructions, resp.Cycles)
	}
	var prev obs.Sample
	for i, s := range samples {
		if s.Committed < prev.Committed || s.Cycle < prev.Cycle {
			t.Errorf("sample %d not monotone: %d/%d after %d/%d", i, s.Committed, s.Cycle, prev.Committed, prev.Cycle)
		}
		if s.Classes.B.BitHops < prev.Classes.B.BitHops {
			t.Errorf("sample %d: cumulative B bit-hops decreased", i)
		}
		if s.Energy.Dynamic < prev.Energy.Dynamic {
			t.Errorf("sample %d: cumulative dynamic energy decreased", i)
		}
		prev = s
	}

	sum, err := obs.Summarize(hdr, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Classes) != 4 {
		t.Fatalf("summary has %d class rows, want 4 (W/PW/B/L)", len(sum.Classes))
	}
	// Model V instantiates B, PW, and L planes; a gcc run must move traffic
	// on B at minimum and report nonzero utilization for it.
	var bRow obs.ClassRow
	for _, r := range sum.Classes {
		if r.Class == "B" {
			bRow = r
		}
	}
	if bRow.Transfers == 0 || bRow.Utilization == 0 {
		t.Errorf("B plane row empty: %+v", bRow)
	}
	if sum.Energy.Dynamic <= 0 || sum.Energy.Leakage <= 0 {
		t.Errorf("summary energy = %+v", sum.Energy)
	}
}

// TestExecuteProbedRejectsMultiprogrammed pins the documented limitation
// with its machine-readable reason.
func TestExecuteProbedRejectsMultiprogrammed(t *testing.T) {
	req := &RunRequest{Benchmarks: []string{"gzip", "gcc"}, N: 4_000}
	_, err := req.ExecuteProbed(context.Background(), io.Discard)
	if err == nil {
		t.Fatal("probed multiprogrammed run was accepted")
	}
	if got := ReasonCode(err); got != ReasonProbeUnsupported {
		t.Errorf("reason = %q, want %q", got, ReasonProbeUnsupported)
	}
}

// TestValidateReasonCodes pins the machine-readable code each admission
// failure class carries.
func TestValidateReasonCodes(t *testing.T) {
	cases := []struct {
		name string
		req  RunRequest
		want string
	}{
		{"neither", RunRequest{}, ReasonBadRequest},
		{"both", RunRequest{Benchmark: "gcc", Benchmarks: []string{"gzip"}}, ReasonBadRequest},
		{"budget", RunRequest{Benchmark: "gcc", N: MaxInstructions + 1}, ReasonBudgetExceeded},
		{"too many", RunRequest{Benchmarks: make([]string, MaxBenchmarks+1)}, ReasonTooManyPrograms},
		{"unknown", RunRequest{Benchmark: "no-such-benchmark"}, ReasonUnknownBenchmark},
		{"bad model", RunRequest{Benchmark: "gcc", Model: "XIV"}, ReasonBadConfig},
		{"bad clusters", RunRequest{Benchmark: "gcc", Clusters: 7}, ReasonBadConfig},
		{"topology", RunRequest{Benchmarks: []string{"gzip", "gcc", "mcf", "swim", "mesa"}, Clusters: 4}, ReasonTopologyMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid request")
			}
			if got := ReasonCode(err); got != tc.want {
				t.Errorf("ReasonCode = %q, want %q (err: %v)", got, tc.want, err)
			}
		})
	}
	if err := (&RunRequest{Benchmark: "gcc"}).Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	// Arbitrary errors fold to the bounded fallback code.
	if got := ReasonCode(io.ErrUnexpectedEOF); got != ReasonInvalidRequest {
		t.Errorf("fallback reason = %q, want %q", got, ReasonInvalidRequest)
	}
}

// probeBenchRun is the shared scenario for the probe-overhead pair: the
// golden corpus's heaviest single-machine case.
func probeBenchRun(b *testing.B, probe Probe) {
	b.Helper()
	cfg := DefaultConfig().WithModel(ModelV)
	prof, ok := workload.ByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	const n = 100_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if probe != nil {
			sim.SetProbe(probe)
		}
		if _, err := sim.RunContext(context.Background(), workload.NewGenerator(prof), n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*uint64(b.N))/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkProbeOff is the no-probe baseline; BenchmarkProbeOn measures the
// full recording path (sampling + JSON encode to an in-memory sink).
// cmd/benchreport compares the pair as the probe-overhead row.
func BenchmarkProbeOff(b *testing.B) {
	probeBenchRun(b, nil)
}

func BenchmarkProbeOn(b *testing.B) {
	rec := obs.NewRecorder(io.Discard, obs.Header{Benchmark: "gcc", Model: "Model-V"})
	probeBenchRun(b, rec)
}
