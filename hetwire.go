// Package hetwire is a cycle-level simulator of microarchitectural wire
// management in partitioned (clustered) processor architectures,
// reproducing Balasubramonian, Muralimanohar, Ramani and Venkatachalapathy,
// "Microarchitectural Wire Management for Performance and Power in
// Partitioned Architectures", HPCA-11, 2005.
//
// The library models a dynamically scheduled clustered processor (4 or 16
// clusters) whose inter-cluster links are built from heterogeneous wire
// planes — baseline B-wires, power-efficient PW-wires, and low-latency
// L-wires — together with the paper's techniques for exploiting them: the
// partial-address accelerated cache pipeline, narrow bit-width operand
// transfers, mispredict signalling on L-wires, and PW-wire steering of
// non-critical traffic.
//
// Quick start:
//
//	cfg := hetwire.DefaultConfig().WithModel(hetwire.ModelVII)
//	res, err := hetwire.RunBenchmark(cfg, "gcc", 1_000_000)
//	fmt.Printf("IPC %.2f\n", res.IPC())
//
// The experiment drivers (Figure3, Table3, Table4, ...) regenerate every
// table and figure of the paper's evaluation; see EXPERIMENTS.md for the
// measured results.
package hetwire

import (
	"context"
	"fmt"

	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/trace"
	"hetwire/internal/workload"
	"hetwire/internal/xrand"
)

// Stats re-exports the simulator's statistics type.
type Stats = core.Stats

// Config aliases the simulated-machine configuration; construct with
// DefaultConfig and refine with WithModel or direct field edits.
type Config = config.Config

// ModelID selects one of the paper's interconnect models I..X.
type ModelID = config.ModelID

// The paper's interconnect models (Tables 3 and 4).
const (
	ModelI    = config.ModelI
	ModelII   = config.ModelII
	ModelIII  = config.ModelIII
	ModelIV   = config.ModelIV
	ModelV    = config.ModelV
	ModelVI   = config.ModelVI
	ModelVII  = config.ModelVII
	ModelVIII = config.ModelVIII
	ModelIX   = config.ModelIX
	ModelX    = config.ModelX
)

// Topologies.
const (
	Crossbar4  = config.Crossbar4
	HierRing16 = config.HierRing16
)

// Steering policies (see config.SteeringPolicy).
const (
	SteerDynamic    = config.SteerDynamic
	SteerStatic     = config.SteerStatic
	SteerRoundRobin = config.SteerRoundRobin
)

// DefaultConfig returns the paper's baseline machine: 4 clusters, Model I
// homogeneous B-wire interconnect, Table 1 core parameters, no
// heterogeneous-wire techniques.
func DefaultConfig() Config { return config.Default() }

// Result is the outcome of one simulation run.
type Result struct {
	core.Stats
	Benchmark string
	Config    Config
}

// Simulator wraps one configured processor instance. A Simulator is
// single-use: build one per run. Not safe for concurrent use; run separate
// Simulators on separate goroutines instead.
type Simulator struct {
	cfg  config.Config
	proc *core.Processor
}

// NewSimulator builds a simulator for the configuration.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, proc: core.New(cfg)}, nil
}

// Run simulates n instructions from the stream. When the stream knows its
// workload's name (workload generators implement Name), the result is
// labeled with it; anonymous streams such as trace-file replays leave
// Result.Benchmark empty.
func (s *Simulator) Run(src trace.Stream, n uint64) Result {
	st := s.proc.Run(src, n)
	res := Result{Stats: st, Config: s.cfg}
	if named, ok := src.(interface{ Name() string }); ok {
		res.Benchmark = named.Name()
	}
	return res
}

// Warmup simulates n instructions and discards their statistics, keeping
// caches, predictors and queues warm (the paper warms structures for 1M
// instructions before measuring).
func (s *Simulator) Warmup(src trace.Stream, n uint64) {
	s.proc.Warmup(src, n)
}

// NarrowPredictorRates exposes the narrow-operand predictor's coverage and
// false-narrow rate after a run (paper Section 4 claims: 95% and 2%).
func (s *Simulator) NarrowPredictorRates() (coverage, falseNarrow float64) {
	return s.proc.NarrowCoverage(), s.proc.NarrowFalseRate()
}

// Benchmarks lists the names of the 23 SPEC2000-like synthetic benchmarks.
func Benchmarks() []string { return workload.Names() }

// RunBenchmark runs one named benchmark for n instructions on the given
// configuration.
func RunBenchmark(cfg Config, benchmark string, n uint64) (Result, error) {
	return RunBenchmarkContext(context.Background(), cfg, benchmark, n)
}

// ThreadResult is one thread's outcome in a multiprogrammed run.
type ThreadResult struct {
	Benchmark string
	Clusters  []int
	Stats     core.Stats
}

// RunMultiprogrammed executes several benchmarks concurrently on one
// machine: clusters are partitioned evenly among the threads, while the
// inter-cluster network and the memory hierarchy are shared — the
// thread-level-parallelism organisation the paper motivates for 16-cluster
// machines. Each thread's benchmark is placed in a disjoint address space.
func RunMultiprogrammed(cfg Config, benchmarks []string, n uint64) ([]ThreadResult, error) {
	return RunMultiprogrammedContext(context.Background(), cfg, benchmarks, n)
}

// multiprogProfiles resolves benchmark or kernel names to workload profiles
// placed in disjoint address spaces with pairwise-distinct generator seeds.
// Thread i's seed is derived from the profile's base seed with a splitmix64
// step, so no thread — not even thread 0 — replays the stream of a
// single-program run of the same benchmark.
func multiprogProfiles(benchmarks []string) ([]workload.Profile, error) {
	profs := make([]workload.Profile, len(benchmarks))
	for i, b := range benchmarks {
		prof, ok := workload.ByName(b)
		if !ok {
			if prof, ok = workload.KernelByName(b); !ok {
				return nil, fmt.Errorf("hetwire: unknown benchmark %q", b)
			}
		}
		prof.AddrOffset = uint64(i) << 33
		prof.Seed = xrand.Mix(prof.Seed, uint64(i))
		profs[i] = prof
	}
	return profs, nil
}

// Kernels lists the synthetic microbenchmark kernels (pchase, stream,
// brstorm, alu, xfer), accepted anywhere a benchmark name is.
func Kernels() []string {
	ks := workload.Kernels()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// RunKernel runs one named microbenchmark kernel.
func RunKernel(cfg Config, kernel string, n uint64) (Result, error) {
	return RunKernelContext(context.Background(), cfg, kernel, n)
}
