package hetwire

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hetwire/internal/config"
	"hetwire/internal/stats"
	"hetwire/internal/workload"
)

// DefaultRunInstructions is the instruction budget used when a RunRequest
// leaves N zero (the paper measures 100M-instruction windows; the serving
// default is small enough for interactive latency).
const DefaultRunInstructions = 1_000_000

// Admission limits enforced by RunRequest.Validate. They bound what the
// serving API will accept — a single unvalidated request must not be able to
// pin a worker for hours or address more threads than any topology has. The
// library entry points (RunBenchmark etc.) are deliberately uncapped: batch
// experiments legitimately run longer windows.
const (
	// MaxInstructions caps the per-program instruction budget at the paper's
	// full measurement window (100M instructions, roughly a minute of
	// simulation at observed throughput).
	MaxInstructions = 100_000_000
	// MaxBenchmarks caps a multiprogrammed request at the largest cluster
	// count any topology provides (the 16-cluster hierarchical ring).
	MaxBenchmarks = 16
)

// RunRequest describes one simulation as accepted by the hetwired serving
// API: a single benchmark or kernel run, or a multiprogrammed run of
// several programs sharing one machine. Simulations are deterministic —
// the resolved configuration plus the workload identity and instruction
// count fully determine the result — which is what makes responses
// cacheable by CacheKey.
type RunRequest struct {
	// Benchmark names one synthetic benchmark (see Benchmarks) or kernel
	// (see Kernels). Exactly one of Benchmark and Benchmarks must be set.
	Benchmark string `json:"benchmark,omitempty"`
	// Benchmarks requests a multiprogrammed run: the programs share the
	// interconnect and memory hierarchy on disjoint cluster partitions.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// N is the instruction budget per program (DefaultRunInstructions if 0).
	N uint64 `json:"n,omitempty"`
	// Config optionally carries a machine configuration in the config-file
	// JSON shape (see LoadConfigFile); the paper's Model I baseline when
	// absent.
	Config json.RawMessage `json:"config,omitempty"`
	// Model, when non-empty, overrides the configuration's interconnect
	// model (I..X) and enables the techniques that model supports —
	// convenient for sweeps that vary only the model.
	Model string `json:"model,omitempty"`
	// Clusters, when non-zero, overrides the cluster count (4 or 16).
	Clusters int `json:"clusters,omitempty"`
}

// Instructions returns the effective instruction budget.
func (r *RunRequest) Instructions() uint64 {
	if r.N == 0 {
		return DefaultRunInstructions
	}
	return r.N
}

// ResolveConfig materialises the request's machine configuration: the
// embedded config document (or the default baseline), with the Model and
// Clusters overrides applied.
func (r *RunRequest) ResolveConfig() (Config, error) {
	cfg := DefaultConfig()
	if len(r.Config) > 0 {
		var err error
		cfg, err = ConfigFromJSON(r.Config)
		if err != nil {
			return Config{}, err
		}
	}
	if r.Model != "" {
		id, ok := modelByName[r.Model]
		if !ok {
			return Config{}, fmt.Errorf("hetwire: unknown model %q (use I..X)", r.Model)
		}
		cfg = cfg.WithModel(id)
	}
	switch r.Clusters {
	case 0:
	case 4:
		cfg.Topology = config.Crossbar4
	case 16:
		cfg.Topology = config.HierRing16
	default:
		return Config{}, fmt.Errorf("hetwire: clusters must be 4 or 16, got %d", r.Clusters)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the request without running it, including the admission
// limits: instruction budgets beyond MaxInstructions and multiprogrammed
// requests with more programs than MaxBenchmarks (or than the resolved
// topology has clusters) are rejected with instructive errors. Every
// rejection is a *RequestError carrying a machine-readable reason code
// (see ReasonCode); the daemon surfaces the code to clients and counts
// rejections per code in /metrics.
func (r *RunRequest) Validate() error {
	if (r.Benchmark == "") == (len(r.Benchmarks) == 0) {
		return &RequestError{Code: ReasonBadRequest,
			Err: fmt.Errorf("hetwire: request must set exactly one of benchmark and benchmarks")}
	}
	if r.N > MaxInstructions {
		return &RequestError{Code: ReasonBudgetExceeded,
			Err: fmt.Errorf("hetwire: instruction budget %d exceeds the per-request limit of %d (split the run, or use the library API for batch windows)",
				r.N, uint64(MaxInstructions))}
	}
	if len(r.Benchmarks) > MaxBenchmarks {
		return &RequestError{Code: ReasonTooManyPrograms,
			Err: fmt.Errorf("hetwire: %d programs exceed the multiprogrammed limit of %d (no topology has more clusters)",
				len(r.Benchmarks), MaxBenchmarks)}
	}
	names := r.Benchmarks
	if r.Benchmark != "" {
		names = []string{r.Benchmark}
	}
	for _, b := range names {
		if _, ok := workload.ByName(b); ok {
			continue
		}
		if _, ok := workload.KernelByName(b); ok {
			continue
		}
		return &RequestError{Code: ReasonUnknownBenchmark,
			Err: fmt.Errorf("hetwire: unknown benchmark %q (see Benchmarks() and Kernels())", b)}
	}
	cfg, err := r.ResolveConfig()
	if err != nil {
		return &RequestError{Code: ReasonBadConfig, Err: err}
	}
	if n := len(r.Benchmarks); n > cfg.Topology.Clusters() {
		return &RequestError{Code: ReasonTopologyMismatch,
			Err: fmt.Errorf("hetwire: %d programs need %d clusters but the topology has %d",
				n, n, cfg.Topology.Clusters())}
	}
	return nil
}

// CacheKey returns the content-addressed identity of the request: a hex
// SHA-256 over the canonical JSON of the resolved configuration, the
// workload names, and the instruction budget. Requests that resolve to the
// same machine and workload share a key even when expressed differently
// (e.g. model given inline vs. in the config document), so a result cache
// keyed on it deduplicates exactly the requests that must produce
// byte-identical results.
func (r *RunRequest) CacheKey() (string, error) {
	cfg, err := r.ResolveConfig()
	if err != nil {
		return "", err
	}
	raw, err := ConfigJSON(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(raw)
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	if r.Benchmark != "" {
		writeStr("single")
		writeStr(r.Benchmark)
	} else {
		writeStr("multi")
		for _, b := range r.Benchmarks {
			writeStr(b)
		}
	}
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], r.Instructions())
	h.Write(n[:])
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ThreadSummary is one program's outcome within a multiprogrammed response.
type ThreadSummary struct {
	Benchmark string  `json:"benchmark"`
	Clusters  []int   `json:"clusters"`
	IPC       float64 `json:"ipc"`
	Stats     Stats   `json:"stats"`
}

// RunResponse is the result of executing a RunRequest. For multiprogrammed
// requests IPC is the arithmetic mean over threads (the paper's summary
// metric) and Threads carries the per-program detail; for single runs
// Stats carries the full readout.
type RunResponse struct {
	Benchmark    string          `json:"benchmark,omitempty"`
	Benchmarks   []string        `json:"benchmarks,omitempty"`
	Model        string          `json:"model"`
	Clusters     int             `json:"clusters"`
	N            uint64          `json:"n"`
	IPC          float64         `json:"ipc"`
	Instructions uint64          `json:"instructions"`
	Cycles       uint64          `json:"cycles"`
	Stats        *Stats          `json:"stats,omitempty"`
	Threads      []ThreadSummary `json:"threads,omitempty"`
}

// Execute runs the request to completion and builds its response. It is
// synchronous and CPU-bound; callers wanting queueing, caching, or
// cancellation use the hetwired daemon, which layers them on top.
func (r *RunRequest) Execute() (*RunResponse, error) {
	return r.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cooperative cancellation: the simulation
// polls ctx every CtxCheckInterval committed instructions and returns ctx's
// error (discarding the partial run) once it is cancelled. Completed runs
// are bit-identical to Execute.
func (r *RunRequest) ExecuteContext(ctx context.Context) (*RunResponse, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	cfg, err := r.ResolveConfig()
	if err != nil {
		return nil, err
	}
	n := r.Instructions()
	resp := &RunResponse{
		Model:    cfg.Model.ID.String(),
		Clusters: cfg.Topology.Clusters(),
		N:        n,
	}
	if r.Benchmark != "" {
		res, err := runAnyContext(ctx, cfg, r.Benchmark, n)
		if err != nil {
			return nil, err
		}
		st := res.Stats
		resp.Benchmark = res.Benchmark
		resp.IPC = st.IPC()
		resp.Instructions = st.Instructions
		resp.Cycles = st.Cycles
		resp.Stats = &st
		return resp, nil
	}
	threads, err := RunMultiprogrammedContext(ctx, cfg, r.Benchmarks, n)
	if err != nil {
		return nil, err
	}
	resp.Benchmarks = r.Benchmarks
	ipcs := make([]float64, len(threads))
	for i, tr := range threads {
		ipcs[i] = tr.Stats.IPC()
		resp.Instructions += tr.Stats.Instructions
		if tr.Stats.Cycles > resp.Cycles {
			resp.Cycles = tr.Stats.Cycles
		}
		resp.Threads = append(resp.Threads, ThreadSummary{
			Benchmark: tr.Benchmark,
			Clusters:  tr.Clusters,
			IPC:       ipcs[i],
			Stats:     tr.Stats,
		})
	}
	resp.IPC = stats.ArithmeticMean(ipcs)
	return resp, nil
}

