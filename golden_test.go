package hetwire

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetwire/internal/config"
)

// The golden-result determinism corpus: a matrix of (model, topology,
// benchmark, instruction count) scenarios whose ResultHash values are pinned
// under testdata/golden/. TestGoldenCorpus re-simulates every scenario and
// compares; any behavioural drift in the simulator — workload generation,
// pipeline timing, network arbitration, statistics accounting — fails the
// test. This is the guard that lets the hot path be optimized aggressively:
// a perf change is valid only if the corpus hashes stay bit-identical.
//
// Refresh intentionally with:
//
//	go test -run TestGoldenCorpus -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata/golden fixtures")

var goldenModels = []config.ModelID{config.ModelI, config.ModelV, config.ModelVIII}

var goldenTopologies = []struct {
	name string
	topo config.Topology
}{
	{"crossbar4", config.Crossbar4},
	{"hierring16", config.HierRing16},
}

// Six representative benchmarks: int-heavy (gzip, gcc, vortex), memory-bound
// (mcf), fp/streaming (swim), and mixed fp (mesa).
var goldenBenchmarks = []string{"gzip", "gcc", "mcf", "swim", "mesa", "vortex"}

var goldenCounts = []uint64{4_000, 16_000}

// goldenFile is the fixture path for one model's scenarios.
func goldenFile(id config.ModelID) string {
	short := strings.TrimPrefix(id.String(), "Model-")
	return filepath.Join("testdata", "golden", fmt.Sprintf("model_%s.json", short))
}

// goldenKey names one scenario inside a fixture file.
func goldenKey(topo string, bench string, n uint64) string {
	return fmt.Sprintf("%s/%s/n=%d", topo, bench, n)
}

// goldenRun executes one corpus scenario.
func goldenRun(t testing.TB, id config.ModelID, topo config.Topology, bench string, n uint64) Result {
	cfg := DefaultConfig().WithModel(id)
	cfg.Topology = topo
	res, err := RunBenchmark(cfg, bench, n)
	if err != nil {
		t.Fatalf("RunBenchmark(%v, %s, %d): %v", id, bench, n, err)
	}
	return res
}

func readGolden(t *testing.T, id config.ModelID) map[string]string {
	raw, err := os.ReadFile(goldenFile(id))
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	out := make(map[string]string)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("golden fixture %s corrupt: %v", goldenFile(id), err)
	}
	return out
}

func writeGolden(t *testing.T, id config.ModelID, hashes map[string]string) {
	raw, err := json.MarshalIndent(hashes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenFile(id)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenFile(id), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCorpus pins the simulator's observable behaviour. Every scenario
// runs as its own parallel subtest so the corpus finishes quickly.
func TestGoldenCorpus(t *testing.T) {
	if *updateGolden {
		for _, id := range goldenModels {
			hashes := make(map[string]string)
			for _, tp := range goldenTopologies {
				for _, bench := range goldenBenchmarks {
					for _, n := range goldenCounts {
						res := goldenRun(t, id, tp.topo, bench, n)
						hashes[goldenKey(tp.name, bench, n)] = ResultHash(res)
					}
				}
			}
			writeGolden(t, id, hashes)
			t.Logf("wrote %s (%d scenarios)", goldenFile(id), len(hashes))
		}
		return
	}
	for _, id := range goldenModels {
		id := id
		want := readGolden(t, id)
		for _, tp := range goldenTopologies {
			tp := tp
			for _, bench := range goldenBenchmarks {
				bench := bench
				for _, n := range goldenCounts {
					n := n
					name := fmt.Sprintf("%s/%s", id, goldenKey(tp.name, bench, n))
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						key := goldenKey(tp.name, bench, n)
						wantHash, ok := want[key]
						if !ok {
							t.Fatalf("no golden hash for %s (refresh with -update-golden)", key)
						}
						res := goldenRun(t, id, tp.topo, bench, n)
						if got := ResultHash(res); got != wantHash {
							t.Errorf("behavioural drift: ResultHash = %s, golden = %s\n"+
								"If this change is intended, refresh with: go test -run TestGoldenCorpus -update-golden .",
								got, wantHash)
						}
						if res.CalendarClamps != 0 {
							t.Errorf("calendar clamps = %d, timing was approximated", res.CalendarClamps)
						}
					})
				}
			}
		}
	}
}

// TestGoldenCorpusContextPath re-runs the full corpus through the
// context-aware entry point and compares against the same pinned fixtures:
// the cancellation polling and forward-progress watchdog must be invisible
// to a run that is never cancelled. Together with TestGoldenCorpus this
// proves Run and RunContext are bit-identical across the whole matrix.
func TestGoldenCorpusContextPath(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	ctx := context.Background()
	for _, id := range goldenModels {
		id := id
		want := readGolden(t, id)
		for _, tp := range goldenTopologies {
			tp := tp
			for _, bench := range goldenBenchmarks {
				bench := bench
				for _, n := range goldenCounts {
					n := n
					name := fmt.Sprintf("%s/%s", id, goldenKey(tp.name, bench, n))
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := DefaultConfig().WithModel(id)
						cfg.Topology = tp.topo
						res, err := RunBenchmarkContext(ctx, cfg, bench, n)
						if err != nil {
							t.Fatalf("RunBenchmarkContext: %v", err)
						}
						wantHash := want[goldenKey(tp.name, bench, n)]
						if got := ResultHash(res); got != wantHash {
							t.Errorf("ctx path drifted from golden: ResultHash = %s, golden = %s", got, wantHash)
						}
					})
				}
			}
		}
	}
}

// TestGoldenCorpusCoversMatrix guards the corpus shape itself: a fixture
// edit that silently drops scenarios must fail.
func TestGoldenCorpusCoversMatrix(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	wantPerModel := len(goldenTopologies) * len(goldenBenchmarks) * len(goldenCounts)
	for _, id := range goldenModels {
		if got := len(readGolden(t, id)); got != wantPerModel {
			t.Errorf("%s: fixture has %d scenarios, want %d", goldenFile(id), got, wantPerModel)
		}
	}
}

// TestResultHashPathIndependence asserts the serving path and the library
// path produce bit-identical results: the same (config, benchmark, n) run
// twice in-process via RunBenchmark and once via RunRequest.Execute must
// yield three equal ResultHash values.
func TestResultHashPathIndependence(t *testing.T) {
	cfg := DefaultConfig().WithModel(ModelV)
	const bench, n = "gcc", uint64(6_000)

	first, err := RunBenchmark(cfg, bench, n)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunBenchmark(cfg, bench, n)
	if err != nil {
		t.Fatal(err)
	}
	req := &RunRequest{Benchmark: bench, Model: "V", N: n}
	resp, err := req.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("RunResponse.Stats missing for single run")
	}
	served := Result{Stats: *resp.Stats, Benchmark: resp.Benchmark}

	h1, h2, h3 := ResultHash(first), ResultHash(second), ResultHash(served)
	if h1 != h2 {
		t.Errorf("two in-process runs differ: %s vs %s", h1, h2)
	}
	if h1 != h3 {
		t.Errorf("serving path differs from library path: %s vs %s", h1, h3)
	}
}

// TestResultHashSensitivity: distinct behaviour must produce distinct
// hashes — otherwise the corpus guards nothing.
func TestResultHashSensitivity(t *testing.T) {
	a, err := RunBenchmark(DefaultConfig(), "gzip", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark(DefaultConfig().WithModel(ModelV), "gzip", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if ResultHash(a) == ResultHash(b) {
		t.Error("Model I and Model V runs hash equally; ResultHash is not sensitive to behaviour")
	}
	c := a
	c.Stats.Instructions++
	if ResultHash(a) == ResultHash(c) {
		t.Error("mutated stats hash equally; ResultHash is not covering Stats")
	}
}
