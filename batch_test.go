package hetwire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hetwire/internal/workload"
)

// goldenBatchRequest is the whole golden corpus as one batch: the sweep axes
// reproduce exactly the 3 models x 6 benchmarks x 2 topologies x 2 counts =
// 72 scenarios TestGoldenCorpus pins.
func goldenBatchRequest(parallelism int) *BatchRequest {
	return &BatchRequest{
		Sweep: &BatchSweep{
			Models:     []string{"I", "V", "VIII"},
			Benchmarks: goldenBenchmarks,
			Clusters:   []int{4, 16},
			Ns:         goldenCounts,
		},
		Parallelism: parallelism,
	}
}

// TestGoldenCorpusBatchPath runs the full 72-scenario golden corpus through
// the batch engine at parallelism 1 and at full CPU-token capacity, and
// asserts every scenario's ResultHash is bit-identical to the sequential
// fixtures — the determinism gate for sweep-level parallelism plus the
// workload memo cache.
func TestGoldenCorpusBatchPath(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	want := make(map[string]string, 72)
	for _, id := range goldenModels {
		short := strings.TrimPrefix(id.String(), "Model-")
		for k, v := range readGolden(t, id) {
			want[short+"/"+k] = v
		}
	}
	topoName := map[int]string{4: "crossbar4", 16: "hierring16"}

	for _, par := range []int{1, 0} { // sequential, then GOMAXPROCS workers
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			resp, err := goldenBatchRequest(par).Execute()
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Scenarios) != 72 {
				t.Fatalf("batch expanded to %d scenarios, want 72", len(resp.Scenarios))
			}
			if resp.Failed != 0 || resp.Completed != 72 {
				t.Fatalf("completed=%d failed=%d, want 72/0", resp.Completed, resp.Failed)
			}
			for _, sc := range resp.Scenarios {
				req := sc.Request
				key := fmt.Sprintf("%s/%s", req.Model, goldenKey(topoName[req.Clusters], req.Benchmark, req.N))
				wantHash, ok := want[key]
				if !ok {
					t.Fatalf("scenario %d (%s) has no golden fixture", sc.Index, key)
				}
				if sc.Response == nil || sc.Response.Stats == nil {
					t.Fatalf("scenario %d (%s): missing response stats", sc.Index, key)
				}
				got := ResultHash(Result{Stats: *sc.Response.Stats, Benchmark: sc.Response.Benchmark})
				if got != wantHash {
					t.Errorf("%s: batch path drifted from golden: ResultHash = %s, want %s", key, got, wantHash)
				}
			}
		})
	}
}

// TestWorkloadMemoCachedRunBitIdentical closes the memo-cache determinism
// loop at the simulator level: a run fed by a cold (uncached) generator
// build and runs fed by memoized builds hash identically.
func TestWorkloadMemoCachedRunBitIdentical(t *testing.T) {
	cfg := DefaultConfig().WithModel(ModelV)
	prof, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	const n = 8_000

	run := func(gen *workload.Generator) string {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ResultHash(sim.Run(gen, n))
	}
	cold := run(workload.NewGeneratorUncached(prof))
	warm1 := run(workload.NewGenerator(prof)) // miss or hit, depending on test order
	warm2 := run(workload.NewGenerator(prof)) // definitely a memo hit
	if warm1 != cold || warm2 != cold {
		t.Errorf("memoized builds drift from cold build: cold=%s warm1=%s warm2=%s", cold, warm1, warm2)
	}
}

// TestBatchRequestValidateReasons: every rejection carries its
// machine-readable reason code.
func TestBatchRequestValidateReasons(t *testing.T) {
	cases := []struct {
		name   string
		req    BatchRequest
		reason string
	}{
		{"empty", BatchRequest{}, ReasonBadRequest},
		{"negative parallelism", BatchRequest{
			Scenarios:   []RunRequest{{Benchmark: "gcc"}},
			Parallelism: -1,
		}, ReasonBadRequest},
		{"sweep missing models", BatchRequest{
			Sweep: &BatchSweep{Benchmarks: []string{"gcc"}},
		}, ReasonBadRequest},
		{"too large", BatchRequest{
			Sweep: &BatchSweep{
				Models:     []string{"I", "V", "VIII", "X"},
				Benchmarks: []string{"gcc", "mcf", "swim", "gzip"},
				Ns:         make([]uint64, 100), // 4*4*100 = 1600 > MaxSweepPoints
			},
		}, ReasonBatchTooLarge},
		{"bad scenario keeps its code", BatchRequest{
			Scenarios: []RunRequest{{Benchmark: "gcc"}, {Benchmark: "no-such-benchmark"}},
		}, ReasonUnknownBenchmark},
		{"bad clusters", BatchRequest{
			Sweep: &BatchSweep{Models: []string{"I"}, Benchmarks: []string{"gcc"}, Clusters: []int{5}},
		}, ReasonBadConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid batch")
			}
			if got := ReasonCode(err); got != tc.reason {
				t.Errorf("reason = %s, want %s (err: %v)", got, tc.reason, err)
			}
		})
	}
	// The "too large" case must fill Ns with valid budgets for the message to
	// blame size, not the zero-N scenarios; zero N defaults, so it's fine.
	ok := BatchRequest{Scenarios: []RunRequest{{Benchmark: "gcc", N: 2_000}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
}

// TestBatchScenarioIndexInError: a failing scenario's index is in the
// validation message, so the offender is locatable in a large sweep.
func TestBatchScenarioIndexInError(t *testing.T) {
	req := BatchRequest{Scenarios: []RunRequest{
		{Benchmark: "gcc"}, {Benchmark: "mcf"}, {Benchmark: "bogus"},
	}}
	err := req.Validate()
	if err == nil || !strings.Contains(err.Error(), "scenario 2") {
		t.Errorf("error does not locate the bad scenario: %v", err)
	}
}

// TestBatchExecuteCancellation: cancelling the context stops the batch,
// marks unfinished scenarios cancelled, and returns the context error.
func TestBatchExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: nothing may run
	req := BatchRequest{
		Sweep:       &BatchSweep{Models: []string{"I"}, Benchmarks: []string{"gcc", "mcf"}, Ns: []uint64{4_000}},
		Parallelism: 1,
	}
	resp, err := req.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if resp == nil || resp.Completed != 0 || resp.Failed != len(resp.Scenarios) {
		t.Fatalf("cancelled batch response = %+v", resp)
	}
	for _, sc := range resp.Scenarios {
		if sc.Reason != "cancelled" {
			t.Errorf("scenario %d reason = %q, want cancelled", sc.Index, sc.Reason)
		}
	}
}

// TestBatchExecuteDeadline: a deadline mid-batch yields partial completion
// without corrupting completed slots.
func TestBatchExecuteDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Wait for the cancel goroutine to actually run, not just the deadline
	// to pass — on a loaded host ctx.Err() can lag the wall clock.
	<-ctx.Done()
	req := BatchRequest{
		Sweep:       &BatchSweep{Models: []string{"I"}, Benchmarks: []string{"gcc"}, Ns: []uint64{4_000}},
		Parallelism: 1,
	}
	resp, err := req.ExecuteContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	for _, sc := range resp.Scenarios {
		if sc.Response != nil {
			t.Errorf("scenario %d has a response after pre-expired deadline", sc.Index)
		}
	}
}

// TestBatchExpandOrder pins the canonical expansion order: explicit
// scenarios first, then benchmark-major sweep axes.
func TestBatchExpandOrder(t *testing.T) {
	req := BatchRequest{
		Scenarios: []RunRequest{{Benchmark: "art", N: 1}},
		Sweep: &BatchSweep{
			Models:     []string{"I", "V"},
			Benchmarks: []string{"gcc", "mcf"},
			Ns:         []uint64{10, 20},
		},
	}
	reqs, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range reqs {
		got = append(got, fmt.Sprintf("%s/%s/%d", r.Benchmark, r.Model, r.N))
	}
	want := []string{
		"art//1",
		"gcc/I/10", "gcc/I/20", "gcc/V/10", "gcc/V/20",
		"mcf/I/10", "mcf/I/20", "mcf/V/10", "mcf/V/20",
	}
	if len(got) != len(want) {
		t.Fatalf("expanded to %d scenarios, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("expansion[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
