package hetwire

import (
	"fmt"

	"hetwire/internal/config"
)

// Finding is one reproduction check's outcome.
type Finding struct {
	Name   string
	OK     bool
	Detail string
}

// String renders a check result line.
func (f Finding) String() string {
	mark := "ok  "
	if !f.OK {
		mark = "FAIL"
	}
	return fmt.Sprintf("%s  %-46s %s", mark, f.Name, f.Detail)
}

// VerifyReproduction runs the paper's headline experiments at the given
// scale and checks every qualitative claim the reproduction stands on:
// the direction of each effect and the bounds the paper states. It is the
// repository's self-test against the paper — `cmd/experiments -verify`
// runs it and exits non-zero if any check fails.
func VerifyReproduction(opt Options) []Finding {
	opt = opt.withDefaults()
	var out []Finding
	add := func(name string, ok bool, format string, args ...any) {
		out = append(out, Finding{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	// Figure 3: the L-wire layer helps, and helps every benchmark.
	fig3 := Figure3(opt)
	add("Figure 3: L-wire layer speeds up the AM IPC", fig3.SpeedupPct > 0,
		"%+.1f%% (paper: +4.2%%)", fig3.SpeedupPct)
	allUp := true
	for i := range fig3.Benchmarks {
		if fig3.LWireIPC[i] <= fig3.BaselineIPC[i] {
			allUp = false
		}
	}
	add("Figure 3: every benchmark improves", allUp, "%d benchmarks", len(fig3.Benchmarks))

	// Table 3: heterogeneity wins ED^2 at both interconnect shares; the
	// energy columns track the paper's arithmetic.
	t3 := Table3(opt)
	homog := map[ModelID]bool{ModelI: true, ModelIV: true, ModelVIII: true}
	b10, b20 := t3.BestED2(10), t3.BestED2(20)
	add("Table 3: best ED2 @10% is heterogeneous", !homog[b10.Model],
		"%v at %.1f (paper: Model-IX at 92.0)", b10.Model, b10.RelED2At10)
	add("Table 3: best ED2 @20% is heterogeneous", !homog[b20.Model],
		"%v at %.1f (paper: Model-III at 92.1)", b20.Model, b20.RelED2At20)
	iiDyn := t3.Rows[1].RelICDyn
	add("Table 3: Model II IC dynamic energy ~52", iiDyn > 45 && iiDyn < 60,
		"%.1f (paper: 52)", iiDyn)
	ivLkg := t3.Rows[3].RelICLkg
	add("Table 3: Model IV IC leakage ~194", ivLkg > 170 && ivLkg < 220,
		"%.1f (paper: 194)", ivLkg)

	// Section 1: latency sensitivity direction.
	lat := LatencySensitivity(opt)
	add("Section 1: doubling latency degrades IPC", lat.SlowdownPct > 0,
		"-%.1f%% (paper: -12%%)", lat.SlowdownPct)

	// Section 5.3: scaling relationships.
	sc := ScalingStudies(opt)
	add("Section 5.3: 16 clusters beat 4", sc.ClusterGainPct > 0,
		"%+.1f%% (paper: +17%%)", sc.ClusterGainPct)
	add("Section 5.3: L-wires worth more when wire-constrained",
		sc.WireConstrainedGainPct > fig3.SpeedupPct*0.8,
		"%+.1f%% vs %+.1f%% nominal (paper: 7.1%% vs 4.2%%)",
		sc.WireConstrainedGainPct, fig3.SpeedupPct)
	add("Section 5.3: L-wires worth more on 16 clusters",
		sc.SixteenClusterLWireGainPct > 0,
		"%+.1f%% (paper: +7.4%%)", sc.SixteenClusterLWireGainPct)

	// Section 4 mechanism bounds.
	cl := Claims(opt)
	add("Section 4: false partial-address deps < 9%", cl.FalseDepPct < 9 && cl.FalseDepPct > 0,
		"%.1f%% (paper bound: 9%%)", cl.FalseDepPct)
	add("Section 4: narrow coverage near 95%", cl.NarrowCoveragePct > 85,
		"%.1f%% (paper: 95%%)", cl.NarrowCoveragePct)
	add("Section 4: false-narrow rate near 2%", cl.NarrowFalsePct < 5,
		"%.1f%% (paper: 2%%)", cl.NarrowFalsePct)
	add("Section 4: narrow operand traffic near 14%",
		cl.NarrowTrafficPct > 8 && cl.NarrowTrafficPct < 22,
		"%.1f%% (paper: 14%%)", cl.NarrowTrafficPct)
	add("Section 4: PW steering IPC cost small", cl.PWSteeringIPCCostPct < 5,
		"%.1f%% (paper: ~1%%)", cl.PWSteeringIPCCostPct)
	add("Section 4: PW criteria reduce contention", cl.ContentionReductionPct > 0,
		"%.1f%% (paper: 14%%)", cl.ContentionReductionPct)

	// Section 3 design choice: plane heterogeneity >= link heterogeneity.
	plane := runSuite(config.Default().WithModel(config.ModelV), opt)
	lh := config.Default().WithModel(config.ModelV)
	lh.LinkHeterogeneous = true
	linkRun := runSuite(lh, opt)
	add("Section 3: plane heterogeneity >= link heterogeneity",
		plane.AMIPC() >= linkRun.AMIPC()*0.98,
		"plane %.3f vs link %.3f IPC", plane.AMIPC(), linkRun.AMIPC())

	return out
}

// AllOK reports whether every finding passed.
func AllOK(fs []Finding) bool {
	for _, f := range fs {
		if !f.OK {
			return false
		}
	}
	return true
}
