package hetwire

import (
	"os"
	"strings"
	"testing"

	"hetwire/internal/trace"
	"hetwire/internal/workload"
)

func smallOpt() Options {
	return Options{
		Instructions: 30_000,
		Benchmarks:   []string{"gzip", "mesa", "twolf"},
	}
}

func TestRunBenchmark(t *testing.T) {
	res, err := RunBenchmark(DefaultConfig(), "gcc", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gcc" || res.Instructions != 20_000 || res.IPC() <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	_, err := RunBenchmark(DefaultConfig(), "doom3", 1000)
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("expected unknown-benchmark error, got %v", err)
	}
}

func TestNewSimulatorRejectsInvalidConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.Core.ROBSize = -1
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 23 {
		t.Fatalf("have %d benchmarks, want 23", len(b))
	}
	s := SortedBenchmarks()
	if len(s) != 23 || s[0] != "ammp" || s[22] != "wupwise" {
		t.Fatalf("sorted list wrong: %v", s)
	}
}

func TestWithModelRoundTrip(t *testing.T) {
	cfg := DefaultConfig().WithModel(ModelVII)
	if !cfg.Tech.LWireCachePipeline || !cfg.Tech.NarrowOperands {
		t.Fatal("Model VII should enable the L-wire techniques")
	}
	res, err := RunBenchmark(cfg, "gzip", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net[2].Transfers == 0 {
		t.Fatal("no L-wire traffic under Model VII")
	}
}

func TestFigure3Small(t *testing.T) {
	r := Figure3(smallOpt())
	if len(r.BaselineIPC) != 3 || len(r.LWireIPC) != 3 {
		t.Fatalf("wrong row count: %+v", r)
	}
	if r.SpeedupPct <= 0 {
		t.Errorf("L-wire layer speedup %.2f%%, expected positive (paper: 4.2%%)", r.SpeedupPct)
	}
	if !strings.Contains(r.String(), "AM") {
		t.Error("rendered figure missing the AM row")
	}
}

func TestTable3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	r := Table3(smallOpt())
	if len(r.Rows) != 10 {
		t.Fatalf("want 10 model rows, got %d", len(r.Rows))
	}
	if r.Rows[0].Model != ModelI || r.Rows[0].RelED2At10 != 100 {
		t.Fatalf("Model I row not normalised: %+v", r.Rows[0])
	}
	// Paper headline: some heterogeneous interconnect beats every
	// homogeneous one on ED^2.
	best := r.BestED2(10)
	if best.Model == ModelI || best.Model == ModelIV || best.Model == ModelVIII {
		t.Errorf("best ED2 model is homogeneous (%v); heterogeneity should win", best.Model)
	}
	if best.RelED2At10 >= 100 {
		t.Errorf("best ED2 %.1f should improve on the baseline", best.RelED2At10)
	}
	// Model II burns much less interconnect dynamic energy (paper: 52).
	if r.Rows[1].RelICDyn > 70 {
		t.Errorf("Model II relative IC dynamic energy %.1f, want ~52", r.Rows[1].RelICDyn)
	}
	if !strings.Contains(r.String(), "Model-X") {
		t.Error("rendered table missing rows")
	}
}

func TestLatencySensitivitySmall(t *testing.T) {
	r := LatencySensitivity(smallOpt())
	if r.SlowdownPct <= 0 {
		t.Errorf("doubling latency should slow the machine, got %+.2f%%", r.SlowdownPct)
	}
	if len(r.PerBenchmark) != 3 {
		t.Errorf("per-benchmark map has %d entries", len(r.PerBenchmark))
	}
}

func TestClaimsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	r := Claims(smallOpt())
	if r.FalseDepPct <= 0 || r.FalseDepPct > 9 {
		t.Errorf("false-dependence rate %.2f%%, paper bound is <9%%", r.FalseDepPct)
	}
	if r.NarrowCoveragePct < 80 {
		t.Errorf("narrow coverage %.1f%%, want >= 80 (paper: 95)", r.NarrowCoveragePct)
	}
	if r.NarrowFalsePct > 6 {
		t.Errorf("false-narrow %.1f%%, want <= 6 (paper: 2)", r.NarrowFalsePct)
	}
	if r.PWTrafficPct <= 5 {
		t.Errorf("PW diversion %.1f%%, expected substantial (paper: 36)", r.PWTrafficPct)
	}
	if r.ContentionReductionPct <= 0 {
		t.Errorf("PW criteria should cut contention, got %.1f%%", r.ContentionReductionPct)
	}
	if r.PWSteeringIPCCostPct > 5 {
		t.Errorf("PW steering IPC cost %.1f%%, want small (paper: ~1%%)", r.PWSteeringIPCCostPct)
	}
}

func TestSuiteRunParallelismMatchesSerial(t *testing.T) {
	optSerial := smallOpt()
	optSerial.Parallelism = 1
	optPar := smallOpt()
	optPar.Parallelism = 8

	a := runSuite(DefaultConfig(), optSerial.withDefaults())
	b := runSuite(DefaultConfig(), optPar.withDefaults())
	for _, bench := range optSerial.Benchmarks {
		if a.perBench[bench].Cycles != b.perBench[bench].Cycles {
			t.Fatalf("%s: parallel run diverged from serial", bench)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Instructions == 0 || len(o.Benchmarks) != 23 || o.Parallelism <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestProfilesRoundTripThroughPublicAPI(t *testing.T) {
	for _, name := range workload.Names() {
		if _, ok := workload.ByName(name); !ok {
			t.Fatalf("profile %s not resolvable", name)
		}
	}
}

func TestRunMultiprogrammedAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = HierRing16
	res, err := RunMultiprogrammed(cfg, []string{"gzip", "mesa"}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Benchmark != "gzip" || res[1].Benchmark != "mesa" {
		t.Fatalf("bad results: %+v", res)
	}
	for _, r := range res {
		if r.Stats.Instructions != 20_000 || len(r.Clusters) != 8 {
			t.Fatalf("thread malformed: %+v", r)
		}
	}
	if _, err := RunMultiprogrammed(cfg, nil, 100); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := RunMultiprogrammed(cfg, []string{"quake4"}, 100); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunKernelAPI(t *testing.T) {
	if len(Kernels()) < 5 {
		t.Fatal("kernel list shrank")
	}
	res, err := RunKernel(DefaultConfig(), "pchase", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunKernel(DefaultConfig(), "alu", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() >= fast.IPC() {
		t.Errorf("pointer chase (%.3f) should be far slower than the ALU kernel (%.3f)",
			res.IPC(), fast.IPC())
	}
	if _, err := RunKernel(DefaultConfig(), "nope", 100); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestVerifyReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep")
	}
	findings := VerifyReproduction(Options{
		Instructions: 60_000,
		Benchmarks:   []string{"gzip", "mesa", "twolf", "swim", "mcf", "vortex", "galgel", "gcc"},
	})
	if len(findings) < 15 {
		t.Fatalf("only %d checks ran", len(findings))
	}
	for _, f := range findings {
		if !f.OK {
			t.Errorf("reproduction check failed: %s", f)
		}
	}
	if !AllOK(findings) {
		t.Error("AllOK disagrees with individual findings")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/machine.json"
	orig := DefaultConfig().WithModel(ModelX)
	orig.Topology = HierRing16
	orig.LatencyScale = 2
	orig.Tech.FrequentValueEnc = true
	if err := SaveConfigFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.ID != ModelX || got.Topology != HierRing16 || got.LatencyScale != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if !got.Tech.FrequentValueEnc || !got.Tech.LWireCachePipeline || !got.Tech.PWStoreData {
		t.Fatalf("techniques lost: %+v", got.Tech)
	}
}

func TestLoadConfigFileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"badmodel.json":    `{"model":"XXL"}`,
		"badjson.json":     `{nope`,
		"badsteer.json":    `{"model":"I","steering":"chaotic"}`,
		"badtech.json":     `{"model":"VII","techniques":{"warp_drive":true}}`,
		"badclust.json":    `{"model":"I","clusters":7}`,
		"invalid.json":     `{"model":"I","techniques":{"cache_pipeline":true}}`,
		"badoverride.json": `{"model":"I","core_overrides":{"flux":3}}`,
	}
	for name, body := range cases {
		if _, err := LoadConfigFile(write(name, body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := LoadConfigFile(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadConfigFileOverrides(t *testing.T) {
	path := t.TempDir() + "/o.json"
	body := `{"model":"I","core_overrides":{"rob":256,"l1d_latency":4},"ls_bits":10}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Core.ROBSize != 256 || cfg.Core.L1DLatency != 4 || cfg.Tech.LSBits != 10 {
		t.Fatalf("overrides not applied: %+v", cfg.Core)
	}
}

func TestTable4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16-cluster model sweep")
	}
	r := Table4(smallOpt())
	if len(r.Rows) != 10 || r.Topology.Clusters() != 16 {
		t.Fatalf("bad table: %+v", r.Topology)
	}
	best := r.BestED2(20)
	if best.Model == ModelI || best.Model == ModelIV || best.Model == ModelVIII {
		t.Errorf("16-cluster best ED2 model is homogeneous (%v)", best.Model)
	}
	// The 16-cluster machine must show a larger L-wire IPC spread than the
	// baseline: Model IX (most L+B bandwidth) above Model II (PW only).
	var ipcII, ipcIX float64
	for _, row := range r.Rows {
		switch row.Model {
		case ModelII:
			ipcII = row.IPC
		case ModelIX:
			ipcIX = row.IPC
		}
	}
	if ipcIX <= ipcII {
		t.Errorf("Model IX (%.3f) should beat Model II (%.3f) at 16 clusters", ipcIX, ipcII)
	}
}

func TestExtensionsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	r := Extensions(smallOpt())
	if r.BaseIPC <= 0 || r.FrequentValueIPC <= 0 || r.CriticalWordIPC <= 0 {
		t.Fatalf("missing results: %+v", r)
	}
	if r.FVTrafficPct <= 0 {
		t.Error("frequent-value compaction never fired")
	}
	if r.TransmissionLineED2 >= 100 {
		t.Errorf("TL plane should reduce ED2, got %.1f", r.TransmissionLineED2)
	}
	if r.FrequentValueIPC < r.BaseIPC*0.97 {
		t.Errorf("FV compaction cost too much: %.3f vs %.3f", r.FrequentValueIPC, r.BaseIPC)
	}
}

func TestExploreArea(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space sweep")
	}
	r := ExploreArea(1.5, 0.10, Options{Instructions: 25_000, Benchmarks: []string{"gzip", "mesa", "twolf"}})
	if len(r.Points) < 4 {
		t.Fatalf("only %d designs enumerated", len(r.Points))
	}
	for _, p := range r.Points {
		if p.MetalArea > 1.5+1e-9 {
			t.Errorf("design %s exceeds the area budget (%.2f)", p.Link, p.MetalArea)
		}
		if p.Link.BWires == 0 && p.Link.PWWires == 0 {
			t.Errorf("design %s has no wide plane", p.Link)
		}
	}
	// The paper's named models inside the budget must appear.
	seen := map[ModelID]bool{}
	for _, p := range r.Points {
		if p.PaperModel != 0 {
			seen[p.PaperModel] = true
		}
	}
	for _, want := range []ModelID{ModelI, ModelII, ModelIII} {
		if !seen[want] {
			t.Errorf("named %v missing from the sweep", want)
		}
	}
	// The winner mixes classes (the paper's conclusion).
	best := r.Best()
	classes := 0
	if best.Link.BWires > 0 {
		classes++
	}
	if best.Link.PWWires > 0 {
		classes++
	}
	if best.Link.LWires > 0 {
		classes++
	}
	if classes < 2 {
		t.Errorf("ED2-optimal design %s is homogeneous", best.Link)
	}
	if r.Points[0].RelED2 > r.Points[len(r.Points)-1].RelED2 {
		t.Error("points not sorted by ED2")
	}
}

func TestCSVRendering(t *testing.T) {
	r := Figure3(smallOpt())
	csv := r.CSV()
	if !strings.HasPrefix(csv, "benchmark,baseline_ipc,lwire_ipc\n") {
		t.Errorf("fig3 CSV header wrong: %q", csv[:40])
	}
	if strings.Count(csv, "\n") != len(r.Benchmarks)+2 { // header + rows + AM
		t.Errorf("fig3 CSV row count wrong:\n%s", csv)
	}
}

func TestSweepLatencyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale sweep")
	}
	c := SweepLatencyScale([]int{1, 3}, smallOpt())
	if len(c.Scales) != 2 || len(c.AMIPC) != 2 || len(c.LWireGainPct) != 2 {
		t.Fatalf("malformed curve: %+v", c)
	}
	if c.AMIPC[1] >= c.AMIPC[0] {
		t.Errorf("IPC should fall as latency grows: %.3f -> %.3f", c.AMIPC[0], c.AMIPC[1])
	}
	if c.LWireGainPct[1] <= c.LWireGainPct[0] {
		t.Errorf("L-wire gain should grow with latency (paper Section 5.3): %.1f%% -> %.1f%%",
			c.LWireGainPct[0], c.LWireGainPct[1])
	}
}

func TestFigure3Bars(t *testing.T) {
	r := Figure3(smallOpt())
	bars := r.Bars(40)
	if !strings.Contains(bars, "gzip") || !strings.Contains(bars, "AM") {
		t.Errorf("bar chart missing rows:\n%s", bars)
	}
	if !strings.Contains(bars, "#") || !strings.Contains(bars, "=") {
		t.Error("bar chart missing bars")
	}
}

// TestMultiprogSeedsDistinct: RunMultiprogrammed must give every thread a
// distinct workload stream. The old `seed ^= i * 0x9E37` mixing left thread
// 0 with the base seed, so its stream collided with a single-program run of
// the same benchmark (and would alias in any result cache keyed on workload
// identity).
func TestMultiprogSeedsDistinct(t *testing.T) {
	profs, err := multiprogProfiles([]string{"gzip", "gzip", "gzip", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := workload.ByName("gzip")
	seen := map[uint64]int{}
	for i, p := range profs {
		if p.Seed == base.Seed {
			t.Errorf("thread %d kept the base seed %#x", i, base.Seed)
		}
		if j, dup := seen[p.Seed]; dup {
			t.Errorf("threads %d and %d share seed %#x", j, i, p.Seed)
		}
		seen[p.Seed] = i
		if want := uint64(i) << 33; p.AddrOffset != want {
			t.Errorf("thread %d AddrOffset = %#x, want %#x", i, p.AddrOffset, want)
		}
	}
	// The divergence must reach the instruction streams themselves: the
	// first blocks of each thread's generated program must differ.
	if len(profs) >= 2 {
		a, b := workload.NewGenerator(profs[0]), workload.NewGenerator(profs[1])
		var ia, ib trace.Instr
		// Strip the per-thread address-space offset from every
		// address-bearing field, so only genuine stream divergence counts.
		strip := func(ins *trace.Instr) {
			ins.PC &^= uint64(3) << 33
			ins.Addr &^= uint64(3) << 33
			ins.Target &^= uint64(3) << 33
		}
		same := true
		for k := 0; k < 256; k++ {
			a.Next(&ia)
			b.Next(&ib)
			strip(&ia)
			strip(&ib)
			if ia != ib {
				same = false
				break
			}
		}
		if same {
			t.Error("threads 0 and 1 generate identical instruction streams")
		}
	}
}

// TestSimulatorRunLabelsBenchmark: results produced through the raw
// Simulator path carry the workload's name when the stream knows it.
func TestSimulatorRunLabelsBenchmark(t *testing.T) {
	prof, ok := workload.ByName("mesa")
	if !ok {
		t.Fatal("mesa profile missing")
	}
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(workload.NewGenerator(prof), 5_000)
	if res.Benchmark != "mesa" {
		t.Errorf("Result.Benchmark = %q, want %q", res.Benchmark, "mesa")
	}
	// Anonymous streams stay unlabeled.
	sim2, _ := NewSimulator(DefaultConfig())
	res2 := sim2.Run(&trace.SliceStream{}, 0)
	if res2.Benchmark != "" {
		t.Errorf("anonymous stream labeled %q", res2.Benchmark)
	}
}
